// Annotated concurrency primitives + Clang Thread Safety Analysis macros.
//
// Every mutex in src/ is an sdb Mutex/SharedMutex from this header (enforced
// by tools/sdb_lint.py), every guarded field carries SDB_GUARDED_BY, and
// every must-hold-the-lock method carries SDB_REQUIRES — so a Clang build
// with -Wthread-safety -Werror *proves* the locking discipline at compile
// time instead of hoping TSan interleaves the right two threads. On
// non-Clang compilers the macros expand to nothing and the wrappers cost one
// pointer-sized name field over the std primitives.
//
// What static analysis cannot see is cross-mutex acquisition ORDER, so in
// debug/DCHECK builds Mutex additionally feeds a process-wide lock-order
// registry: a per-thread held-lock stack plus a global acquired-before edge
// graph with cycle detection. The first time two locks are ever taken in
// conflicting order — on ANY interleaving, no actual deadlock needed — the
// process aborts printing the full inversion cycle. This catches ABBA
// deadlocks that neither -Wthread-safety nor TSan's happens-before model
// reports. See README "Static analysis & concurrency discipline" for the
// repo's lock-order hierarchy.
//
// Usage pattern:
//
//   class Counter {
//    public:
//     void Add(int n) {
//       MutexLock lock(&mu_);
//       total_ += n;
//     }
//    private:
//     void FlushLocked() SDB_REQUIRES(mu_);
//     Mutex mu_;
//     int total_ SDB_GUARDED_BY(mu_) = 0;
//   };
//
// Condition variables deliberately take no predicate lambda: a lambda body
// is a separate function the analysis cannot attribute the held lock to, so
// waits are written as explicit loops in the REQUIRES context:
//
//   while (!ready_) cv_.Wait(&mu_);   // ready_ is SDB_GUARDED_BY(mu_)

#ifndef SHAREDDB_COMMON_SYNC_H_
#define SHAREDDB_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/logging.h"

// --- Clang Thread Safety Analysis attribute macros ---------------------------
// Compile to nothing on non-Clang compilers (GCC has no -Wthread-safety).

#if defined(__clang__)
#define SDB_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define SDB_TS_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability (a lockable thing). `x` names the
/// capability kind in diagnostics, e.g. SDB_CAPABILITY("mutex").
#define SDB_CAPABILITY(x) SDB_TS_ATTRIBUTE(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (MutexLock and friends).
#define SDB_SCOPED_CAPABILITY SDB_TS_ATTRIBUTE(scoped_lockable)

/// Field may only be accessed while holding the given capability.
#define SDB_GUARDED_BY(x) SDB_TS_ATTRIBUTE(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed while holding the
/// given capability (the pointer itself is unguarded).
#define SDB_PT_GUARDED_BY(x) SDB_TS_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the capability (exclusively) to be held on entry, and
/// does not release it.
#define SDB_REQUIRES(...) SDB_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function requires at least shared (reader) ownership on entry.
#define SDB_REQUIRES_SHARED(...) \
  SDB_TS_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define SDB_ACQUIRE(...) SDB_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define SDB_ACQUIRE_SHARED(...) \
  SDB_TS_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define SDB_RELEASE(...) SDB_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define SDB_RELEASE_SHARED(...) \
  SDB_TS_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire the capability; first argument is the return
/// value that means success, e.g. SDB_TRY_ACQUIRE(true).
#define SDB_TRY_ACQUIRE(...) SDB_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself;
/// guards against self-deadlock on non-reentrant mutexes).
#define SDB_EXCLUDES(...) SDB_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Declares mutexes that must be acquired before/after this one (static
/// ordering hints the analysis checks where it can).
#define SDB_ACQUIRED_BEFORE(...) SDB_TS_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define SDB_ACQUIRED_AFTER(...) SDB_TS_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Runtime assertion that the capability is held (tells the analysis so).
#define SDB_ASSERT_CAPABILITY(x) SDB_TS_ATTRIBUTE(assert_capability(x))

/// Function returns a reference to the given capability.
#define SDB_RETURN_CAPABILITY(x) SDB_TS_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Outside sync.h
/// internals every use must carry a one-line justification comment
/// (enforced by tools/sdb_lint.py).
#define SDB_NO_THREAD_SAFETY_ANALYSIS \
  SDB_TS_ATTRIBUTE(no_thread_safety_analysis)

namespace shareddb {

// --- runtime lock-order registry ---------------------------------------------
// Active by default in debug/DCHECK builds; a single relaxed atomic branch
// per Lock/Unlock when disabled, so tests can force it on in Release too.

namespace lockorder {

/// Turns the detector on/off process-wide; returns the previous setting.
/// Default: on when SDB_DCHECKs are on (!NDEBUG or SDB_FORCE_DCHECKS).
bool SetEnabled(bool enabled);
bool Enabled();

/// Number of distinct acquired-before edges observed so far (test/telemetry).
size_t EdgeCount();

/// Forgets every recorded edge (tests that intentionally vary order).
void ResetForTest();

// Hooks called by Mutex/SharedMutex/CondVar below. Not for direct use.
void OnAcquireAttempt(const void* mu, const char* name);
void OnTryAcquireSuccess(const void* mu, const char* name);
void OnRelease(const void* mu);
void OnMutexDestroy(const void* mu);

}  // namespace lockorder

// --- Mutex -------------------------------------------------------------------

/// Annotated non-reentrant mutex. The optional name appears in lock-order
/// inversion reports; give every long-lived mutex one.
class SDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* name) : name_(name) {}
  ~Mutex() { lockorder::OnMutexDestroy(this); }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SDB_ACQUIRE() {
    lockorder::OnAcquireAttempt(this, name_);
    mu_.lock();
  }

  void Unlock() SDB_RELEASE() {
    lockorder::OnRelease(this);
    mu_.unlock();
  }

  /// Non-blocking acquire. Success is pushed onto the held stack but does
  /// not record ordering edges — a failed try backs off instead of
  /// deadlocking, so trylock-based ordering schemes stay legal.
  bool TryLock() SDB_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lockorder::OnTryAcquireSuccess(this, name_);
    return true;
  }

  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const char* name_ = "mutex";
};

/// Annotated reader/writer mutex (std::shared_mutex). Both acquisition
/// modes feed the lock-order registry; same-thread reacquisition in any
/// mode is flagged (reentrant shared_mutex use is undefined behavior).
class SDB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const char* name) : name_(name) {}
  ~SharedMutex() { lockorder::OnMutexDestroy(this); }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SDB_ACQUIRE() {
    lockorder::OnAcquireAttempt(this, name_);
    mu_.lock();
  }
  void Unlock() SDB_RELEASE() {
    lockorder::OnRelease(this);
    mu_.unlock();
  }
  void LockShared() SDB_ACQUIRE_SHARED() {
    lockorder::OnAcquireAttempt(this, name_);
    mu_.lock_shared();
  }
  void UnlockShared() SDB_RELEASE_SHARED() {
    lockorder::OnRelease(this);
    mu_.unlock_shared();
  }

  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const char* name_ = "shared_mutex";
};

// --- scoped locks ------------------------------------------------------------

/// RAII exclusive lock (the std::lock_guard replacement).
class SDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SDB_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() SDB_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive lock that can be dropped and re-taken mid-scope (the
/// std::unique_lock replacement for unlock-around-work patterns).
class SDB_SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex* mu) SDB_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~ReleasableMutexLock() SDB_RELEASE() {
    if (held_) mu_->Unlock();
  }

  void Unlock() SDB_RELEASE() {
    SDB_DCHECK(held_);
    held_ = false;
    mu_->Unlock();
  }

  void Relock() SDB_ACQUIRE() {
    SDB_DCHECK(!held_);
    mu_->Lock();
    held_ = true;
  }

  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;

 private:
  Mutex* const mu_;
  bool held_ = true;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class SDB_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) SDB_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() SDB_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class SDB_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) SDB_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() SDB_RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// --- CondVar -----------------------------------------------------------------

/// Condition variable over Mutex. No predicate overloads on purpose — write
/// the wait loop in the calling (REQUIRES) context so the analysis sees the
/// guarded reads (see the header comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and re-acquires `mu` before return.
  void Wait(Mutex* mu) SDB_REQUIRES(mu);

  /// As Wait, bounded; returns true if the wait timed out.
  bool WaitFor(Mutex* mu, std::chrono::nanoseconds rel_time) SDB_REQUIRES(mu);
  bool WaitUntil(Mutex* mu, std::chrono::steady_clock::time_point deadline)
      SDB_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace shareddb

#endif  // SHAREDDB_COMMON_SYNC_H_
