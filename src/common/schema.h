// Schema: named, typed columns of a (possibly intermediary) relation.
//
// In the data-query model (§3.1 of the paper) every intermediary relation
// additionally carries a set-valued `query_id` attribute; that attribute is
// represented out-of-band in DQBatch (see batch.h) rather than as a column,
// matching the paper's NF² implementation note.

#ifndef SHAREDDB_COMMON_SCHEMA_H_
#define SHAREDDB_COMMON_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace shareddb {

/// A single column definition.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// Ordered list of columns with by-name lookup.
///
/// Schemas are immutable after construction and shared via shared_ptr;
/// operators that concatenate inputs (joins) build derived schemas with
/// `Join`, prefixing column names to keep them unambiguous.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  /// Convenience factory: Make({{"id", kInt}, {"name", kString}}).
  static std::shared_ptr<const Schema> Make(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column with the given name, or -1 if absent.
  int FindColumn(const std::string& name) const;

  /// Index of the column with the given name; aborts if absent.
  size_t ColumnIndex(const std::string& name) const;

  /// Concatenation of two schemas (join output). Column names are prefixed
  /// with `left_prefix`/`right_prefix` + "." when a prefix is non-empty.
  static std::shared_ptr<const Schema> Join(const Schema& left, const Schema& right,
                                            const std::string& left_prefix = "",
                                            const std::string& right_prefix = "");

  /// Projection of a subset of columns, in the given order.
  std::shared_ptr<const Schema> Project(const std::vector<size_t>& indices) const;

  /// "name:TYPE, name:TYPE, ..."
  std::string ToString() const;

  bool Equals(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

}  // namespace shareddb

#endif  // SHAREDDB_COMMON_SCHEMA_H_
