// CRC32C (Castagnoli, polynomial 0x1EDC6F41): the checksum guarding every
// WAL record. Chosen over CRC32 for its strictly better burst-error
// detection; software slice-by-one implementation (the WAL is bound by
// fsync, not by checksumming).

#ifndef SHAREDDB_COMMON_CRC32C_H_
#define SHAREDDB_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace shareddb {

/// Extends `crc` (state from a previous call, 0 to start) over `data[0, n)`.
/// Returns the running state; finalize with Crc32c() or by XOR below.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// One-shot CRC32C of a buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace shareddb

#endif  // SHAREDDB_COMMON_CRC32C_H_
