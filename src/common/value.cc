#include "common/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace shareddb {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return "INT";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
  }
  return "?";
}

double Value::AsNumeric() const {
  switch (type()) {
    case ValueType::kInt: return static_cast<double>(std::get<int64_t>(v_));
    case ValueType::kDouble: return std::get<double>(v_);
    default: SDB_CHECK(false && "AsNumeric on non-numeric Value");
  }
  return 0.0;
}

namespace {

// 2^63 as a double; doubles at or above it (or below -2^63) are outside
// int64 range and must not be cast (the cast is UB).
constexpr double kTwo63 = 9223372036854775808.0;

// Exact comparison of an int64 against a double. NaN orders after every
// non-NaN numeric so the order stays total (a plain double comparison would
// report NaN "equal" to everything, which breaks sort comparators and hash
// keys). Avoids the precision loss of converting the int to double: both
// sides are compared through the double's integral part.
int CompareIntDouble(int64_t x, double y) {
  if (std::isnan(y)) return -1;
  if (y >= kTwo63) return -1;
  if (y < -kTwo63) return 1;
  const int64_t yi = static_cast<int64_t>(y);  // truncates toward zero
  if (x != yi) return x < yi ? -1 : 1;
  // Equal integral parts: the fraction decides (yi converts back exactly —
  // any double with |y| >= 2^53 has no fractional part).
  const double frac = y - static_cast<double>(yi);
  if (frac > 0) return -1;
  if (frac < 0) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  const ValueType a = type(), b = other.type();
  // NULL orders first.
  if (a == ValueType::kNull || b == ValueType::kNull) {
    return (a == b) ? 0 : (a == ValueType::kNull ? -1 : 1);
  }
  const bool a_num = (a == ValueType::kInt || a == ValueType::kDouble);
  const bool b_num = (b == ValueType::kInt || b == ValueType::kDouble);
  if (a_num && b_num) {
    if (a == ValueType::kInt && b == ValueType::kInt) {
      const int64_t x = std::get<int64_t>(v_), y = std::get<int64_t>(other.v_);
      return (x < y) ? -1 : (x > y ? 1 : 0);
    }
    if (a == ValueType::kInt) {
      return CompareIntDouble(std::get<int64_t>(v_), std::get<double>(other.v_));
    }
    if (b == ValueType::kInt) {
      return -CompareIntDouble(std::get<int64_t>(other.v_), std::get<double>(v_));
    }
    const double x = std::get<double>(v_), y = std::get<double>(other.v_);
    // NaN compares equal to itself and greater than every other numeric,
    // keeping the order total (required by sort comparators, B-trees, and
    // the k-way merge; IEEE semantics would make NaN unordered).
    if (std::isnan(x) || std::isnan(y)) {
      if (std::isnan(x) && std::isnan(y)) return 0;
      return std::isnan(x) ? 1 : -1;
    }
    return (x < y) ? -1 : (x > y ? 1 : 0);
  }
  if (a_num != b_num) return a_num ? -1 : 1;  // numerics < strings
  // Both strings.
  const int c = std::get<std::string>(v_).compare(std::get<std::string>(other.v_));
  return (c < 0) ? -1 : (c > 0 ? 1 : 0);
}

namespace {

// 64-bit mix (splitmix64 finalizer) for integer hashing.
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x6e756c6cULL;
    case ValueType::kInt:
      return Mix64(static_cast<uint64_t>(std::get<int64_t>(v_)));
    case ValueType::kDouble: {
      // Hash doubles holding integral values identically to the INT encoding
      // so cross-type numeric joins behave. All NaN bit patterns compare
      // equal (see Compare) so they must share one hash; doubles outside
      // int64 range must not be cast (UB).
      const double d = std::get<double>(v_);
      if (std::isnan(d)) return 0x6e616e6eULL;
      if (d >= -kTwo63 && d < kTwo63) {
        const int64_t i = static_cast<int64_t>(d);
        if (static_cast<double>(i) == d) return Mix64(static_cast<uint64_t>(i));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits);
    }
    case ValueType::kString: {
      // FNV-1a over bytes, then mixed.
      uint64_t h = 1469598103934665603ULL;
      for (const char c : std::get<std::string>(v_)) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
      }
      return Mix64(h);
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(v_));
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", std::get<double>(v_));
      return buf;
    }
    case ValueType::kString:
      return "'" + std::get<std::string>(v_) + "'";
  }
  return "?";
}

}  // namespace shareddb
