// QueryIdSet: the set-valued `query_id` attribute of the data-query model
// (paper §3.1). Implemented as a sorted list because the paper found lists to
// be "the more space and time efficient option in all our experiments"
// compared to bitmaps. A bitmap variant is provided for the ablation
// benchmark that re-validates that choice.
//
// Representation: small-buffer-optimized. Most tuples are relevant to few
// queries, so sets of up to kInlineCapacity ids live inline in the object
// (no heap allocation; copies are 32-byte memcpys). Larger sets spill to a
// refcounted immutable-when-shared heap buffer, so copying a big annotation
// set — the dominant operation when one scan output fans out to thousands of
// subscribers — is a refcount bump, and hash-consed sets (QidInternPool)
// genuinely share one allocation, making repeated-set equality a pointer
// compare.

#ifndef SHAREDDB_COMMON_QUERY_ID_SET_H_
#define SHAREDDB_COMMON_QUERY_ID_SET_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "common/logging.h"

namespace shareddb {

/// Identifier of an active query within a batch generation.
using QueryId = uint32_t;

/// Read-only view of a sorted id array (what QueryIdSet::ids() returns).
class QueryIdSpan {
 public:
  QueryIdSpan() = default;
  QueryIdSpan(const QueryId* data, size_t size) : data_(data), size_(size) {}

  const QueryId* begin() const { return data_; }
  const QueryId* end() const { return data_ + size_; }
  const QueryId* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  QueryId operator[](size_t i) const { return data_[i]; }

  std::vector<QueryId> ToVector() const { return {begin(), end()}; }

 private:
  const QueryId* data_ = nullptr;
  size_t size_ = 0;
};

inline bool operator==(const QueryIdSpan& a, const QueryIdSpan& b) {
  return a.size() == b.size() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(QueryId)) == 0);
}
inline bool operator==(const QueryIdSpan& a, const std::vector<QueryId>& b) {
  return a == QueryIdSpan(b.data(), b.size());
}
inline bool operator==(const std::vector<QueryId>& a, const QueryIdSpan& b) {
  return b == a;
}
inline bool operator!=(const QueryIdSpan& a, const QueryIdSpan& b) { return !(a == b); }

/// Sorted-list set of query ids annotating one tuple.
class QueryIdSet {
 public:
  /// Ids held without heap allocation. Chosen so sizeof(QueryIdSet) is 32
  /// bytes (same cache footprint as the std::vector it replaces, +8).
  static constexpr size_t kInlineCapacity = 6;

  QueryIdSet() : size_(0), heap_(0) {}
  /// Singleton set (the common case when a per-query predicate matched).
  explicit QueryIdSet(QueryId id) : size_(1), heap_(0) { store_.inline_ids[0] = id; }
  /// From an unsorted or sorted list; duplicates are removed.
  QueryIdSet(std::initializer_list<QueryId> ids);

  QueryIdSet(const QueryIdSet& o);
  QueryIdSet(QueryIdSet&& o) noexcept;
  QueryIdSet& operator=(const QueryIdSet& o);
  QueryIdSet& operator=(QueryIdSet&& o) noexcept;
  ~QueryIdSet() { if (heap_) DecRef(store_.heap); }

  /// Takes a vector that must already be sorted and unique (checked in debug).
  static QueryIdSet FromSorted(std::vector<QueryId> sorted_ids);
  /// Same, from a raw array.
  static QueryIdSet FromSorted(const QueryId* data, size_t n);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  QueryIdSpan ids() const { return {data(), size_}; }
  const QueryId* begin() const { return data(); }
  const QueryId* end() const { return data() + size_; }

  /// True when the set lives in the inline buffer (no heap allocation).
  bool is_inline() const { return heap_ == 0; }
  /// True when two sets share one heap buffer (hash-consed / copied).
  bool SharesStorageWith(const QueryIdSet& o) const {
    return heap_ && o.heap_ && store_.heap == o.store_.heap;
  }

  /// Membership test (binary search; linear scan for tiny sets).
  bool Contains(QueryId id) const;

  /// Inserts one id, keeping order; no-op if present. Copies on write when
  /// the heap buffer is shared.
  void Insert(QueryId id);

  /// Set intersection — the shared-join conjunct R.query_id = S.query_id.
  /// Merge-based for similar sizes; gallops (binary probes of the larger
  /// side) when one operand is much smaller, which is the common case when a
  /// selective tuple meets a broadly subscribed one. Identical operands
  /// (shared storage) short-circuit to a refcount bump.
  QueryIdSet Intersect(const QueryIdSet& other) const;

  /// Number of element touches an Intersect of sets with these sizes costs —
  /// the quantity operators charge to WorkStats::qid_elems.
  static uint64_t MergeCost(size_t a, size_t b);

  /// Size ratio beyond which Intersect gallops instead of merging.
  static constexpr size_t kGallopRatio = 8;

  /// Set union — merging interest lists when deduplicating tuples.
  QueryIdSet Union(const QueryIdSet& other) const;

  /// True iff the intersection is non-empty (cheaper than materializing it).
  bool Intersects(const QueryIdSet& other) const;

  bool operator==(const QueryIdSet& o) const {
    if (SharesStorageWith(o)) return true;  // hash-consed fast path
    return size_ == o.size_ &&
           (size_ == 0 ||
            std::memcmp(data(), o.data(), size_ * sizeof(QueryId)) == 0);
  }
  bool operator!=(const QueryIdSet& o) const { return !(*this == o); }

  /// Content hash (FNV-1a over the id array), cached on heap sets. Batches
  /// of tuples produced by one operator cycle carry few DISTINCT annotation
  /// sets (e.g. "all subscribers of this scan"), so set-algebra results are
  /// memoized per cycle keyed on content — see QidInternPool.
  uint64_t HashValue() const;

  /// "{1, 2, 5}"
  std::string ToString() const;

 private:
  /// Heap representation: refcounted so that copies of one annotation set —
  /// a batch fanning out to consumers, hash-consed repeats — share one
  /// allocation. Refs are atomic because batches cross operator threads.
  struct HeapRep {
    std::atomic<uint32_t> refs;
    uint32_t capacity;
    mutable std::atomic<uint64_t> hash_cache;  // 0 = not yet computed
    // `capacity` QueryIds follow the header.
    QueryId* data() { return reinterpret_cast<QueryId*>(this + 1); }
    const QueryId* data() const { return reinterpret_cast<const QueryId*>(this + 1); }
  };

  static HeapRep* NewRep(uint32_t capacity);
  static void DecRef(HeapRep* rep);

  const QueryId* data() const { return heap_ ? store_.heap->data() : store_.inline_ids; }
  /// Mutable data pointer; caller must hold a unique (or inline) rep.
  QueryId* mutable_data() { return heap_ ? store_.heap->data() : store_.inline_ids; }

  /// Ensures the rep is safely mutable with room for `need` ids: inline
  /// stays put, a shared or full heap rep is replaced by a private copy.
  void EnsureUnique(size_t need);

  /// Builds a set of size n, copying from `src` (must be sorted unique).
  void AssignFrom(const QueryId* src, size_t n);

  union Store {
    QueryId inline_ids[kInlineCapacity];
    HeapRep* heap;
    Store() {}
  } store_;
  uint32_t size_;
  uint32_t heap_;  // discriminant: 1 = store_.heap is live

  friend class QidInternPool;
};

static_assert(sizeof(QueryIdSet) == 32, "QueryIdSet should stay one half cache line");

/// Per-cycle hash-consing pool. Operators producing many tuples with
/// repeated annotation sets (scan subscriber sets, probe groups) intern
/// them: all copies then share one heap allocation, set equality becomes a
/// pointer compare, and per-cycle memo caches hit without touching ids.
/// Inline sets pass through untouched — they already cost no allocation.
class QidInternPool {
 public:
  QidInternPool() = default;
  QidInternPool(const QidInternPool&) = delete;
  QidInternPool& operator=(const QidInternPool&) = delete;

  /// Returns the canonical set equal to `s` (inserting s if new). When
  /// `was_known` is non-null it is set to true iff an equal set was already
  /// interned (operators charge a repeated set O(1), not O(size)).
  QueryIdSet Intern(const QueryIdSet& s, bool* was_known = nullptr);

  /// Drops all canonical sets (start of a new cycle).
  void Clear() {
    table_.Clear();
    entries_ = 0;
  }

  size_t size() const { return entries_; }

 private:
  FlatHashMap<uint64_t, std::vector<QueryIdSet>> table_;  // hash -> chains
  size_t entries_ = 0;
};

/// Bitmap-based alternative used only by the ablation bench (micro_ablation):
/// fixed universe of query ids [0, capacity).
class QueryIdBitmap {
 public:
  explicit QueryIdBitmap(size_t capacity) : bits_((capacity + 63) / 64, 0) {}

  void Insert(QueryId id) {
    SDB_DCHECK(id / 64 < bits_.size());
    bits_[id / 64] |= (1ULL << (id % 64));
  }
  bool Contains(QueryId id) const {
    return (bits_[id / 64] >> (id % 64)) & 1ULL;
  }
  /// In-place intersection with another bitmap of the same capacity.
  void IntersectWith(const QueryIdBitmap& other) {
    SDB_DCHECK(bits_.size() == other.bits_.size());
    for (size_t i = 0; i < bits_.size(); ++i) bits_[i] &= other.bits_[i];
  }
  /// In-place union.
  void UnionWith(const QueryIdBitmap& other) {
    SDB_DCHECK(bits_.size() == other.bits_.size());
    for (size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
  }
  bool Any() const {
    for (const uint64_t w : bits_) {
      if (w) return true;
    }
    return false;
  }
  size_t PopCount() const {
    size_t n = 0;
    for (const uint64_t w : bits_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }
  size_t capacity_words() const { return bits_.size(); }

 private:
  std::vector<uint64_t> bits_;
};

}  // namespace shareddb

#endif  // SHAREDDB_COMMON_QUERY_ID_SET_H_
