// QueryIdSet: the set-valued `query_id` attribute of the data-query model
// (paper §3.1). Implemented as a sorted list (small vector) because the paper
// found lists to be "the more space and time efficient option in all our
// experiments" compared to bitmaps. A bitmap variant is provided for the
// ablation benchmark that re-validates that choice.

#ifndef SHAREDDB_COMMON_QUERY_ID_SET_H_
#define SHAREDDB_COMMON_QUERY_ID_SET_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.h"

namespace shareddb {

/// Identifier of an active query within a batch generation.
using QueryId = uint32_t;

/// Sorted-list set of query ids annotating one tuple.
///
/// Most tuples are relevant to few queries, so the representation favors
/// small cardinalities: inline storage comes from std::vector's small size,
/// set algebra is merge-based (linear in the sizes of the operands).
class QueryIdSet {
 public:
  QueryIdSet() = default;
  /// Singleton set (the common case when a per-query predicate matched).
  explicit QueryIdSet(QueryId id) : ids_{id} {}
  /// From an unsorted or sorted list; duplicates are removed.
  QueryIdSet(std::initializer_list<QueryId> ids);
  /// Takes a vector that must already be sorted and unique (checked in debug).
  static QueryIdSet FromSorted(std::vector<QueryId> sorted_ids);

  bool empty() const { return ids_.empty(); }
  size_t size() const { return ids_.size(); }
  const std::vector<QueryId>& ids() const { return ids_; }

  /// Membership test (binary search; linear scan for tiny sets).
  bool Contains(QueryId id) const;

  /// Inserts one id, keeping order; no-op if present.
  void Insert(QueryId id);

  /// Set intersection — the shared-join conjunct R.query_id = S.query_id.
  /// Merge-based for similar sizes; gallops (binary probes of the larger
  /// side) when one operand is much smaller, which is the common case when a
  /// selective tuple meets a broadly subscribed one.
  QueryIdSet Intersect(const QueryIdSet& other) const;

  /// Number of element touches an Intersect of sets with these sizes costs —
  /// the quantity operators charge to WorkStats::qid_elems.
  static uint64_t MergeCost(size_t a, size_t b);

  /// Size ratio beyond which Intersect gallops instead of merging.
  static constexpr size_t kGallopRatio = 8;

  /// Set union — merging interest lists when deduplicating tuples.
  QueryIdSet Union(const QueryIdSet& other) const;

  /// True iff the intersection is non-empty (cheaper than materializing it).
  bool Intersects(const QueryIdSet& other) const;

  bool operator==(const QueryIdSet& o) const { return ids_ == o.ids_; }

  /// Content hash (FNV-1a over the id array). Batches of tuples produced by
  /// one operator cycle carry few DISTINCT annotation sets (e.g. "all
  /// subscribers of this scan"), so set-algebra results can be memoized per
  /// cycle keyed on content — the hash-consing the cost model assumes when
  /// operators charge a reduced touch cost for repeated operands.
  uint64_t HashValue() const;

  /// "{1, 2, 5}"
  std::string ToString() const;

 private:
  std::vector<QueryId> ids_;
};

/// Bitmap-based alternative used only by the ablation bench (micro_ablation):
/// fixed universe of query ids [0, capacity).
class QueryIdBitmap {
 public:
  explicit QueryIdBitmap(size_t capacity) : bits_((capacity + 63) / 64, 0) {}

  void Insert(QueryId id) {
    SDB_DCHECK(id / 64 < bits_.size());
    bits_[id / 64] |= (1ULL << (id % 64));
  }
  bool Contains(QueryId id) const {
    return (bits_[id / 64] >> (id % 64)) & 1ULL;
  }
  /// In-place intersection with another bitmap of the same capacity.
  void IntersectWith(const QueryIdBitmap& other) {
    SDB_DCHECK(bits_.size() == other.bits_.size());
    for (size_t i = 0; i < bits_.size(); ++i) bits_[i] &= other.bits_[i];
  }
  /// In-place union.
  void UnionWith(const QueryIdBitmap& other) {
    SDB_DCHECK(bits_.size() == other.bits_.size());
    for (size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
  }
  bool Any() const {
    for (const uint64_t w : bits_) {
      if (w) return true;
    }
    return false;
  }
  size_t PopCount() const {
    size_t n = 0;
    for (const uint64_t w : bits_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }
  size_t capacity_words() const { return bits_.size(); }

 private:
  std::vector<uint64_t> bits_;
};

}  // namespace shareddb

#endif  // SHAREDDB_COMMON_QUERY_ID_SET_H_
