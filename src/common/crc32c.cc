#include "common/crc32c.h"

namespace shareddb {

namespace {

// Table for the reflected Castagnoli polynomial, built once at startup.
struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82f63b78u;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
  }
};

const Crc32cTable kTable;

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable.t[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace shareddb
