#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace shareddb {

std::string ToLowerAscii(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts, const std::string& delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += delim;
    out += parts[i];
  }
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  char buf[1024];
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n < 0) return "";
  if (static_cast<size_t>(n) < sizeof(buf)) return std::string(buf, n);
  std::string big(static_cast<size_t>(n) + 1, '\0');
  va_start(ap, fmt);
  std::vsnprintf(big.data(), big.size(), fmt, ap);
  va_end(ap);
  big.resize(static_cast<size_t>(n));
  return big;
}

}  // namespace shareddb
