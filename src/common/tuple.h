// Tuple: one row of values. Row-oriented on purpose — SharedDB's operators
// pass whole tuples through the dataflow network and annotate them with
// query-id sets; a columnar layout buys little for this processing model
// and the paper's engine is row-oriented.

#ifndef SHAREDDB_COMMON_TUPLE_H_
#define SHAREDDB_COMMON_TUPLE_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace shareddb {

using Tuple = std::vector<Value>;

/// Concatenates two tuples (join output).
inline Tuple ConcatTuples(const Tuple& a, const Tuple& b) {
  Tuple out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

/// Renders "(v1, v2, ...)".
inline std::string TupleToString(const Tuple& t) {
  std::string s = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i) s += ", ";
    s += t[i].ToString();
  }
  s += ")";
  return s;
}

/// Field-wise equality.
inline bool TuplesEqual(const Tuple& a, const Tuple& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

/// Lexicographic comparison over all fields (stable total order for tests).
inline bool TupleLess(const Tuple& a, const Tuple& b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

/// Combined hash of all fields.
inline uint64_t TupleHash(const Tuple& t) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : t) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace shareddb

#endif  // SHAREDDB_COMMON_TUPLE_H_
