# ctest smoke for sdb_cli: pipe a scripted REPL session through the --demo
# server and check the output carries real rows. Run as
#   cmake -DCLI=<path-to-sdb_cli> -P sdb_cli_smoke.cmake
# Exercises: prepare, blocking exec (query + update), async/poll/fetch,
# cancel, and the typed NotFound error path (`exec nope` fails the command
# but must not fail the session — the script's last exec still succeeds, and
# the CLI's nonzero exit for the failed command is expected and asserted).

set(SCRIPT "prepare user_by_id
exec user_by_id 7
exec credit 7 500
exec user_by_id 7
async by_country 2
poll 1
fetch 1
async by_country 3
cancel 2
fetch 2
banner
quit
")
file(WRITE ${CMAKE_CURRENT_BINARY_DIR}/sdb_cli_smoke_input.txt "${SCRIPT}")

execute_process(
  COMMAND ${CLI} --demo
  INPUT_FILE ${CMAKE_CURRENT_BINARY_DIR}/sdb_cli_smoke_input.txt
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE RC
  TIMEOUT 60)

if(NOT RC EQUAL 0)
  message(FATAL_ERROR "sdb_cli exited ${RC}\nstdout:\n${OUT}\nstderr:\n${ERR}")
endif()
# The credited account row: user 7 (country 7%5=2) starts at 70, +500.
if(NOT OUT MATCHES "7\t2\t570")
  message(FATAL_ERROR "credited row missing from output:\n${OUT}")
endif()
if(NOT OUT MATCHES "user_by_id: 1 parameter")
  message(FATAL_ERROR "prepare output missing:\n${OUT}")
endif()
if(NOT OUT MATCHES "async #1 submitted")
  message(FATAL_ERROR "async submission missing:\n${OUT}")
endif()

# The NotFound path: a bad statement name is a typed error and a nonzero
# exit, with the connection still usable afterwards.
file(WRITE ${CMAKE_CURRENT_BINARY_DIR}/sdb_cli_smoke_err.txt
     "exec nope 1\nexec user_by_id 1\nquit\n")
execute_process(
  COMMAND ${CLI} --demo
  INPUT_FILE ${CMAKE_CURRENT_BINARY_DIR}/sdb_cli_smoke_err.txt
  OUTPUT_VARIABLE OUT2
  RESULT_VARIABLE RC2
  TIMEOUT 60)
if(RC2 EQUAL 0)
  message(FATAL_ERROR "NotFound exec should exit nonzero:\n${OUT2}")
endif()
if(NOT OUT2 MATCHES "1\t1\t10")
  message(FATAL_ERROR "connection unusable after NotFound:\n${OUT2}")
endif()
message(STATUS "sdb_cli smoke passed")
