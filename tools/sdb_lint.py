#!/usr/bin/env python3
"""sdb_lint: repo-local static checks for the concurrency discipline.

Checks (each can be listed with --list-checks):

  raw-sync        Raw standard-library synchronization primitives
                  (std::mutex, std::lock_guard, <condition_variable>, ...)
                  anywhere outside src/common/sync.h / sync.cc. Everything
                  must go through the annotated wrappers so Clang's
                  -Wthread-safety analysis and the runtime lock-order
                  registry see every acquisition.

  unguarded       In a class that owns a Mutex/SharedMutex, data members
                  declared after the first lock member must be annotated
                  SDB_GUARDED_BY / SDB_PT_GUARDED_BY, be std::atomic,
                  const, a sync primitive, or carry an explicit
                  "// unguarded:" justification. The repo convention is
                  locks-first-then-what-they-guard, so a bare member in
                  that region is almost always a latent race.

  ignored-status  A statement-level call to a function that returns
                  Status/Result whose value is dropped. Must be either
                  consumed or explicitly discarded as `(void)call();` with
                  a justification comment on the same or preceding line.
                  ([[nodiscard]] catches this at compile time too; the lint
                  additionally enforces the justification comment.)

  include-guard   Every .h under src/ must have a #ifndef/#define include
                  guard (or #pragma once).

  bare-escape     SDB_NO_THREAD_SAFETY_ANALYSIS outside common/sync.{h,cc}
                  without a justification comment on the same line or one
                  of the three lines above it. Escaping the analysis is a
                  claim that some structural invariant makes the access
                  safe -- the claim must be written down.

Exit status: 0 when clean, 1 when any check fires, 2 on usage error.
Run from anywhere; paths are resolved relative to the repo root (parent
of this script's directory) unless --root is given.
"""

import argparse
import os
import re
import sys
import tempfile

# The one place raw primitives are allowed: the wrapper implementation.
RAW_SYNC_WHITELIST = {
    os.path.join("src", "common", "sync.h"),
    os.path.join("src", "common", "sync.cc"),
}

RAW_SYNC_PATTERNS = [
    (re.compile(r"\bstd::(recursive_)?(timed_)?mutex\b"), "std::mutex"),
    (re.compile(r"\bstd::shared_(timed_)?mutex\b"), "std::shared_mutex"),
    (re.compile(r"\bstd::condition_variable"), "std::condition_variable"),
    (re.compile(r"\bstd::lock_guard\b"), "std::lock_guard"),
    (re.compile(r"\bstd::scoped_lock\b"), "std::scoped_lock"),
    (re.compile(r"\bstd::unique_lock\b"), "std::unique_lock"),
    (re.compile(r"\bstd::shared_lock\b"), "std::shared_lock"),
    (re.compile(r"#\s*include\s*<mutex>"), "#include <mutex>"),
    (re.compile(r"#\s*include\s*<shared_mutex>"), "#include <shared_mutex>"),
    (re.compile(r"#\s*include\s*<condition_variable>"),
     "#include <condition_variable>"),
]

# A member declaration: optional `mutable`, a type with no parentheses,
# a name, optional guard annotation, optional initializer. Function
# declarations contain '(' in positions this regex rejects.
MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?"
    r"(?P<type>[\w:<>,\s\*&\.]+?)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*"
    r"(?P<guard>SDB_(?:PT_)?GUARDED_BY\([^;]*\))?\s*"
    r"(?:=\s*[^;]*|\{[^;]*\})?;")

LOCK_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:Mutex|SharedMutex)\s+[A-Za-z_]\w*")

# Types that don't need SDB_GUARDED_BY even when declared after a lock.
UNGUARDED_OK_TYPES = re.compile(
    r"std::atomic|std::thread|Mutex|SharedMutex|CondVar|\bconst\b")

STATUS_FN_DECL_RE = re.compile(
    r"^\s*(?:virtual\s+)?(?:static\s+)?"
    r"(?:Status|Result<[^;=]*>)\s+([A-Za-z_]\w*)\s*\(")

# `foo.Bar(...);` / `foo->Bar(...);` / `Bar(...);` as a whole statement.
CALL_STMT_RE = re.compile(
    r"^\s*(?:[A-Za-z_][\w\.\->:\[\]]*(?:\.|->|::))?"
    r"(?P<fn>[A-Za-z_]\w*)\s*\(.*\)\s*;\s*(?://.*)?$")


def find_sources(root, subdir, exts):
    out = []
    base = os.path.join(root, subdir)
    for dirpath, _, names in os.walk(base):
        for name in sorted(names):
            if os.path.splitext(name)[1] in exts:
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def strip_comments_keep_lines(text):
    """Removes // and /* */ comment text but preserves line structure."""
    out = []
    in_block = False
    for line in text.splitlines():
        if in_block:
            end = line.find("*/")
            if end < 0:
                out.append("")
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        # Strip string literals first so "//" inside strings doesn't count.
        scrubbed = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
        while True:
            block = scrubbed.find("/*")
            linec = scrubbed.find("//")
            if block >= 0 and (linec < 0 or block < linec):
                end = scrubbed.find("*/", block + 2)
                if end < 0:
                    scrubbed = scrubbed[:block]
                    line = line[:block]
                    in_block = True
                    break
                scrubbed = scrubbed[:block] + " " * (end + 2 - block) + scrubbed[end + 2:]
                line = line[:block] + " " * (end + 2 - block) + line[end + 2:]
                continue
            if linec >= 0:
                scrubbed = scrubbed[:linec]
                line = line[:linec]
            break
        out.append(line)
    return out


def check_raw_sync(root, files):
    findings = []
    for path in files:
        rel = os.path.relpath(path, root)
        if rel in RAW_SYNC_WHITELIST:
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = strip_comments_keep_lines(f.read())
        for i, line in enumerate(lines, 1):
            for pat, what in RAW_SYNC_PATTERNS:
                if pat.search(line):
                    findings.append(
                        f"{rel}:{i}: raw-sync: {what} outside common/sync.h "
                        f"-- use the shareddb wrappers (Mutex/MutexLock/CondVar)")
    return findings


def check_unguarded(root, files):
    findings = []
    for path in files:
        rel = os.path.relpath(path, root)
        if rel in RAW_SYNC_WHITELIST:
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
        lines = strip_comments_keep_lines("\n".join(raw_lines))
        depth = 0
        # Brace depth at which we saw a lock member -> scan members at the
        # same depth until the enclosing class closes.
        lock_depths = set()
        for i, line in enumerate(lines, 1):
            if LOCK_MEMBER_RE.match(line) and ";" in line:
                lock_depths.add(depth)
            elif depth in lock_depths:
                m = MEMBER_RE.match(line)
                if (m and not m.group("guard")
                        and not UNGUARDED_OK_TYPES.search(m.group("type"))
                        and "using" not in m.group("type")
                        and "unguarded:" not in raw_lines[i - 1]
                        and (i < 2 or "unguarded:" not in raw_lines[i - 2])):
                    findings.append(
                        f"{rel}:{i}: unguarded: member '{m.group('name')}' "
                        f"declared after a lock member without SDB_GUARDED_BY "
                        f"(annotate it, make it atomic/const, or justify with "
                        f"'// unguarded: <reason>')")
            # Count braces with string literals scrubbed so `{"name"}`
            # initializers don't skew depth; a `}` closes the scope whose
            # interior sat at the current depth.
            for ch in re.sub(r'"(?:[^"\\]|\\.)*"', '""', line):
                if ch == "{":
                    depth += 1
                elif ch == "}":
                    lock_depths.discard(depth)
                    depth -= 1
    return findings


ANY_FN_DECL_RE = re.compile(
    r"^\s*(?:virtual\s+)?(?:static\s+)?(?:inline\s+)?"
    r"(?P<ret>[\w:]+(?:<[^;()]*>)?[&\*]?)\s+(?P<name>[A-Za-z_]\w*)\s*\(")


def collect_status_functions(root, headers):
    """Names declared returning Status/Result in some header and *never*
    declared with another return type. Ambiguous names (e.g. a void
    Iterator::Open next to a Status Wal::Open) are dropped: a name-based
    lint cannot resolve the receiver, and [[nodiscard]] already catches
    those at compile time."""
    names = set()
    other_ret = set()
    for path in headers:
        with open(path, encoding="utf-8", errors="replace") as f:
            for line in strip_comments_keep_lines(f.read()):
                m = STATUS_FN_DECL_RE.match(line)
                if m:
                    names.add(m.group(1))
                    continue
                m = ANY_FN_DECL_RE.match(line)
                if m and m.group("ret") not in (
                        "return", "new", "delete", "else", "co_return"):
                    other_ret.add(m.group("name"))
    names -= other_ret
    # Factory helpers construct a Status on purpose; dropping the *call
    # site's use* of them is caught where the surrounding function ignores
    # its own return, not here.
    names -= {"OK", "InvalidArgument", "NotFound", "AlreadyExists",
              "OutOfRange", "FailedPrecondition", "Aborted", "IoError",
              "Unimplemented", "Internal", "ResourceExhausted",
              "DeadlineExceeded", "Unavailable"}
    return names


def check_ignored_status(root, files, status_fns):
    findings = []
    for path in files:
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
        lines = strip_comments_keep_lines("\n".join(raw_lines))
        prev_code = ""
        for i, line in enumerate(lines, 1):
            stripped = line.strip()
            prev, prev_code = prev_code, stripped or prev_code
            if stripped.startswith(("return", "if", "while", "for", "case",
                                    "#", "}", "SDB_", "EXPECT", "ASSERT")):
                continue
            # Only statement starts: a continuation line of a multi-line
            # expression is not a dropped result.
            if prev and not prev.endswith((";", "{", "}", ":")):
                continue
            if "=" in stripped.split("(")[0]:
                continue  # assigned
            void_cast = stripped.startswith("(void)")
            body = stripped[len("(void)"):].lstrip() if void_cast else stripped
            m = CALL_STMT_RE.match(body)
            if not m or m.group("fn") not in status_fns:
                continue
            if void_cast:
                has_comment = ("//" in raw_lines[i - 1]
                               or (i >= 2 and raw_lines[i - 2].strip().startswith("//")))
                if not has_comment:
                    findings.append(
                        f"{rel}:{i}: ignored-status: (void)-discarded "
                        f"{m.group('fn')}() needs a justification comment")
            else:
                findings.append(
                    f"{rel}:{i}: ignored-status: result of {m.group('fn')}() "
                    f"is dropped -- check it or discard with "
                    f"'(void)...;  // <why>'")
    return findings


def check_bare_escapes(root, files):
    findings = []
    for path in files:
        rel = os.path.relpath(path, root)
        if rel in RAW_SYNC_WHITELIST:
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
        for i, line in enumerate(raw_lines, 1):
            if "SDB_NO_THREAD_SAFETY_ANALYSIS" not in line:
                continue
            context = raw_lines[max(0, i - 4):i]
            if not any("//" in l for l in context):
                findings.append(
                    f"{rel}:{i}: bare-escape: SDB_NO_THREAD_SAFETY_ANALYSIS "
                    f"without a justification comment nearby")
    return findings


def check_include_guards(root, headers):
    findings = []
    for path in headers:
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        if "#pragma once" in text:
            continue
        m = re.search(r"#\s*ifndef\s+(\w+)\s*\n\s*#\s*define\s+(\w+)", text)
        if not m or m.group(1) != m.group(2):
            findings.append(
                f"{rel}:1: include-guard: header lacks a matching "
                f"#ifndef/#define include guard")
        elif "#endif" not in text:
            findings.append(
                f"{rel}:1: include-guard: guard #ifndef {m.group(1)} "
                f"is never closed with #endif")
    return findings


def run_all(root):
    src_files = find_sources(root, "src", {".h", ".cc"})
    headers = [p for p in src_files if p.endswith(".h")]
    impls = [p for p in src_files if p.endswith(".cc")]
    test_files = find_sources(root, "tests", {".h", ".cc"})
    tool_files = find_sources(root, "tools", {".h", ".cc"})

    findings = []
    findings += check_raw_sync(root, src_files + test_files + tool_files)
    findings += check_unguarded(root, headers)
    status_fns = collect_status_functions(root, headers)
    findings += check_ignored_status(root, impls, status_fns)
    findings += check_include_guards(root, headers)
    findings += check_bare_escapes(root, src_files)
    return findings


# ---------------------------------------------------------------------------
# Self-test: seed one violation per check into a temp tree and assert the
# checker fires; also assert the clean variant passes.
# ---------------------------------------------------------------------------

SEEDED_RAW_SYNC = """
#include <mutex>
namespace shareddb { struct X { std::mutex mu_; }; }
"""

CLEAN_RAW_SYNC = """
#include "common/sync.h"
namespace shareddb { struct X { Mutex mu_{"x"}; }; }
"""

SEEDED_UNGUARDED = """
#ifndef SEED_H_
#define SEED_H_
#include "common/sync.h"
namespace shareddb {
class Queue {
 private:
  Mutex mu_{"queue"};
  int pending_ = 0;
};
}
#endif  // SEED_H_
"""

CLEAN_UNGUARDED = """
#ifndef SEED_H_
#define SEED_H_
#include "common/sync.h"
namespace shareddb {
class Queue {
 private:
  Mutex mu_{"queue"};
  int pending_ SDB_GUARDED_BY(mu_) = 0;
  std::atomic<int> hits_{0};
  // unguarded: written once at setup before threads start.
  int capacity_ = 8;
};
}
#endif  // SEED_H_
"""

SEEDED_IGNORED_STATUS_H = """
#ifndef SEED_S_H_
#define SEED_S_H_
namespace shareddb {
struct Log {
  Status Flush();
};
}
#endif  // SEED_S_H_
"""

SEEDED_IGNORED_STATUS_CC = """
#include "seed_status.h"
namespace shareddb {
void Tick(Log* log) {
  log->Flush();
}
}
"""

CLEAN_IGNORED_STATUS_CC = """
#include "seed_status.h"
namespace shareddb {
void Tick(Log* log) {
  (void)log->Flush();  // best-effort: next Flush retries.
  Status s = log->Flush();
  if (!s.ok()) return;
}
}
"""

SEEDED_NO_GUARD = """
namespace shareddb { struct Y {}; }
"""

SEEDED_BARE_ESCAPE = """
#include "common/sync.h"
namespace shareddb {
struct Z {
  int x() SDB_NO_THREAD_SAFETY_ANALYSIS { return x_; }
  int x_ = 0;
};
}
"""


def write_tree(root, files):
    for rel, content in files.items():
        path = os.path.join(root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)


def self_test():
    failures = []

    def expect(name, findings, substr, want_hit):
        hit = any(substr in f for f in findings)
        if hit != want_hit:
            failures.append(
                f"{name}: expected {'a' if want_hit else 'no'} finding "
                f"matching {substr!r}; got: {findings or '[]'}")

    with tempfile.TemporaryDirectory(prefix="sdb_lint_selftest.") as tmp:
        write_tree(tmp, {
            "src/runtime/bad_sync.cc": SEEDED_RAW_SYNC,
            "src/runtime/bad_fields.h": SEEDED_UNGUARDED,
            "src/storage/seed_status.h": SEEDED_IGNORED_STATUS_H,
            "src/storage/bad_status.cc": SEEDED_IGNORED_STATUS_CC,
            "src/api/no_guard.h": SEEDED_NO_GUARD,
            "src/core/bad_escape.cc": SEEDED_BARE_ESCAPE,
            # The whitelist itself must stay exempt.
            "src/common/sync.h": "#pragma once\n" + SEEDED_RAW_SYNC,
        })
        findings = run_all(tmp)
        expect("raw-sync seeded", findings, "bad_sync.cc:2: raw-sync", True)
        expect("raw-sync whitelist", findings, "sync.h:", False)
        expect("unguarded seeded", findings,
               "bad_fields.h:9: unguarded: member 'pending_'", True)
        expect("ignored-status seeded", findings,
               "bad_status.cc:5: ignored-status", True)
        expect("include-guard seeded", findings,
               "no_guard.h:1: include-guard", True)
        expect("bare-escape seeded", findings,
               "bad_escape.cc:5: bare-escape", True)

    with tempfile.TemporaryDirectory(prefix="sdb_lint_selftest.") as tmp:
        write_tree(tmp, {
            "src/runtime/good_sync.cc": CLEAN_RAW_SYNC,
            "src/runtime/good_fields.h": CLEAN_UNGUARDED,
            "src/storage/seed_status.h": SEEDED_IGNORED_STATUS_H,
            "src/storage/good_status.cc": CLEAN_IGNORED_STATUS_CC,
        })
        findings = run_all(tmp)
        if findings:
            failures.append(f"clean tree flagged: {findings}")

    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL: {f}", file=sys.stderr)
        return 1
    print("sdb_lint self-test: all checks fire on seeded violations, "
          "clean tree passes.")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each check fires on a seeded violation")
    parser.add_argument("--list-checks", action="store_true")
    args = parser.parse_args()

    if args.list_checks:
        print("raw-sync unguarded ignored-status include-guard")
        return 0
    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"sdb_lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings = run_all(root)
    for f in findings:
        print(f)
    if findings:
        print(f"sdb_lint: {len(findings)} finding(s).", file=sys.stderr)
        return 1
    print("sdb_lint: clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
