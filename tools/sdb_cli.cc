// sdb_cli: interactive client for a SharedDB TCP front door.
//
//   sdb_cli --host=127.0.0.1 --port=5432      # connect to a running server
//   sdb_cli --demo                            # self-contained: starts a demo
//                                             # server in-process, serves it
//                                             # on an ephemeral port, and
//                                             # connects the REPL to it
//
// Commands (one per line; also fine piped through stdin for scripting):
//   prepare <name>                validate a statement, show its param count
//   exec <name> [arg ...]         blocking execute; rows print as a table
//   async <name> [arg ...]        EXECUTE_ASYNC; prints a local handle id
//   fetch <id>                    block for an async call's result
//   poll <id>                     non-blocking readiness probe
//   cancel <id>                   best-effort cancel (handle stays fetchable)
//   banner                        server banner from the handshake
//   help | quit
//
// Arguments parse as int64 when integral, double when they contain '.', and
// strings otherwise (quotes optional). Engine statuses print as
// `status-name: message` — the same taxonomy the in-process API returns
// (kResourceExhausted, kDeadlineExceeded, kUnavailable, kAborted, ...).

#include <cctype>
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/server.h"
#include "core/plan_builder.h"
#include "net/client.h"
#include "net/server.h"

using namespace shareddb;

namespace {

Value ParseArg(const std::string& tok) {
  if (tok.size() >= 2 && tok.front() == '\'' && tok.back() == '\'') {
    return Value::Str(tok.substr(1, tok.size() - 2));
  }
  bool integral = !tok.empty(), floating = false;
  for (size_t i = 0; i < tok.size(); ++i) {
    const char c = tok[i];
    if (c == '-' && i == 0) continue;
    if (c == '.') {
      floating = true;
      continue;
    }
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      integral = false;
      floating = false;
      break;
    }
  }
  if (floating) return Value::Double(std::strtod(tok.c_str(), nullptr));
  if (integral && !(tok.size() == 1 && tok[0] == '-')) {
    return Value::Int(std::strtoll(tok.c_str(), nullptr, 10));
  }
  return Value::Str(tok);
}

void PrintResult(const ResultSet& rs) {
  if (!rs.status.ok()) {
    std::printf("%s\n", rs.status.ToString().c_str());
    return;
  }
  if (rs.schema == nullptr || rs.schema->columns().empty()) {
    std::printf("OK, %llu row(s) updated\n",
                static_cast<unsigned long long>(rs.update_count));
    return;
  }
  for (size_t c = 0; c < rs.schema->columns().size(); ++c) {
    std::printf("%s%s", c ? "\t" : "", rs.schema->columns()[c].name.c_str());
  }
  std::printf("\n");
  for (const Tuple& row : rs.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%s", c ? "\t" : "", row[c].ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu row(s); waited %llu batch(es))\n", rs.rows.size(),
              static_cast<unsigned long long>(rs.batches_waited));
}

/// The --demo database: enough schema to exercise every REPL verb.
struct DemoServer {
  Catalog catalog;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<api::Server> api;
  std::unique_ptr<net::Server> front;

  Status Start(uint16_t port) {
    Table* users = catalog.CreateTable(
        "users", Schema::Make({{"user_id", ValueType::kInt},
                               {"country", ValueType::kInt},
                               {"account", ValueType::kInt}}));
    for (int i = 0; i < 50; ++i) {
      users->Insert({Value::Int(i), Value::Int(i % 5), Value::Int(i * 10)},
                    1);
    }
    catalog.snapshots().Reset(1);
    GlobalPlanBuilder b(&catalog);
    const SchemaPtr us = users->schema();
    b.AddQuery("user_by_id",
               logical::Scan("users", Expr::Eq(Expr::Column(*us, "user_id"),
                                               Expr::Param(0))));
    b.AddQuery("by_country",
               logical::Scan("users", Expr::Eq(Expr::Column(*us, "country"),
                                               Expr::Param(0))));
    b.AddUpdate("credit", "users",
                {{"account", Expr::Add(Expr::Column(2), Expr::Param(1))}},
                Expr::Eq(Expr::Column(0), Expr::Param(0)));
    engine = std::make_unique<Engine>(b.Build());
    api = std::make_unique<api::Server>(engine.get());
    net::NetServerOptions nopts;
    nopts.port = port;
    front = std::make_unique<net::Server>(api.get(), nopts);
    return front->Start();
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--host=", 7) == 0) {
      host = a + 7;
    } else if (std::strncmp(a, "--port=", 7) == 0) {
      port = static_cast<uint16_t>(std::atoi(a + 7));
    } else if (std::strcmp(a, "--demo") == 0) {
      demo = true;
    } else {
      std::fprintf(stderr,
                   "usage: sdb_cli [--host=H] [--port=P] [--demo]\n");
      return 2;
    }
  }

  DemoServer demo_server;
  if (demo) {
    const Status s = demo_server.Start(port);
    if (!s.ok()) {
      std::fprintf(stderr, "demo server: %s\n", s.ToString().c_str());
      return 1;
    }
    port = demo_server.front->port();
    std::printf("demo server listening on %s:%u "
                "(statements: user_by_id, by_country, credit)\n",
                host.c_str(), port);
  }
  if (port == 0) {
    std::fprintf(stderr, "sdb_cli: --port is required (or use --demo)\n");
    return 2;
  }

  net::Client client;
  const Status cs = client.Connect(host, port, "sdb_cli");
  if (!cs.ok()) {
    std::fprintf(stderr, "connect %s:%u: %s\n", host.c_str(), port,
                 cs.ToString().c_str());
    return 1;
  }
  std::printf("connected to %s:%u (%s)\n", host.c_str(), port,
              client.server_banner().c_str());

  std::map<uint64_t, net::AsyncCall> pending;
  uint64_t next_local = 1;
  std::string line;
  int failures = 0;
  while (std::printf("sdb> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#') continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      std::printf("prepare|exec|async|fetch|poll|cancel|banner|quit\n");
      continue;
    }
    if (cmd == "banner") {
      std::printf("%s\n", client.server_banner().c_str());
      continue;
    }
    if (cmd == "prepare") {
      std::string name;
      in >> name;
      net::PreparedStatement stmt;
      const Status s = client.Prepare(name, &stmt);
      if (s.ok()) {
        std::printf("%s: %zu parameter(s)\n", name.c_str(),
                    stmt.num_params());
      } else {
        std::printf("%s\n", s.ToString().c_str());
        ++failures;
      }
      continue;
    }
    if (cmd == "exec" || cmd == "async") {
      std::string name, tok;
      in >> name;
      std::vector<Value> params;
      while (in >> tok) params.push_back(ParseArg(tok));
      if (cmd == "exec") {
        const ResultSet rs = client.Execute(name, std::move(params));
        if (!rs.status.ok()) ++failures;
        PrintResult(rs);
      } else {
        pending.emplace(next_local,
                        client.ExecuteAsync(name, std::move(params)));
        std::printf("async #%llu submitted\n",
                    static_cast<unsigned long long>(next_local));
        ++next_local;
      }
      continue;
    }
    if (cmd == "fetch" || cmd == "poll" || cmd == "cancel") {
      uint64_t id = 0;
      in >> id;
      auto it = pending.find(id);
      if (it == pending.end()) {
        std::printf("no such async handle #%llu\n",
                    static_cast<unsigned long long>(id));
        ++failures;
        continue;
      }
      if (cmd == "poll") {
        std::printf("#%llu %s\n", static_cast<unsigned long long>(id),
                    it->second.WaitFor(std::chrono::milliseconds(0))
                        ? "ready"
                        : "pending");
      } else if (cmd == "cancel") {
        it->second.Cancel();
        std::printf("#%llu cancel requested\n",
                    static_cast<unsigned long long>(id));
      } else {
        const ResultSet rs = it->second.Get();
        PrintResult(rs);
        pending.erase(it);
      }
      continue;
    }
    std::printf("unknown command '%s' (try: help)\n", cmd.c_str());
    ++failures;
  }
  std::printf("\n");
  return failures == 0 ? 0 : 1;
}
