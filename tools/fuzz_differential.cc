// fuzz_differential: differential workload fuzzer CLI.
//
//   fuzz_differential --seed=1 --iters=500 --sessions=4   # fuzz 500 seeds
//   fuzz_differential --replay=fuzz_repro_seed42.txt      # replay a repro
//
// Each iteration runs one seed through testing::RunSeed — a random workload
// executed by N concurrent api::Session threads over the live Server
// heartbeat AND by the query-at-a-time baseline oracle, with results
// compared call for call. Exit code 0 = no mismatch; 1 = mismatch (a repro
// artifact is written into --artifact-dir); 2 = usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "testing/differential.h"

namespace {

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  return false;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: fuzz_differential [--seed=N] [--iters=K] [--sessions=S]\n"
      "                         [--calls=C] [--rounds=R] [--artifact-dir=DIR]\n"
      "                         [--crash-points=K] [--crash-batches=B]\n"
      "                         [--transport=inproc|tcp]\n"
      "                         [--overload] [--inject-fault] [--verbose]\n"
      "       fuzz_differential --replay=ARTIFACT\n"
      "       fuzz_differential --seed=N --dump   # print seed N's workload\n");
}

}  // namespace

int main(int argc, char** argv) {
  using shareddb::testing::RunOptions;
  using shareddb::testing::SeedReport;

  uint64_t seed = 1;
  uint64_t iters = 32;
  RunOptions opts;
  opts.artifact_dir = ".";
  std::string replay_path;
  bool dump = false;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--seed", &v)) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--iters", &v)) {
      iters = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--sessions", &v)) {
      opts.sessions = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--calls", &v)) {
      opts.calls_per_session = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--rounds", &v)) {
      opts.mixed_rounds = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--crash-points", &v)) {
      opts.crash_points = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--crash-batches", &v)) {
      opts.crash_batches = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--artifact-dir", &v)) {
      opts.artifact_dir = v;
    } else if (ParseFlag(argv[i], "--transport", &v)) {
      if (std::strcmp(v, "tcp") == 0) {
        opts.tcp_transport = true;
      } else if (std::strcmp(v, "inproc") != 0) {
        Usage();
        return 2;
      }
    } else if (ParseFlag(argv[i], "--replay", &v)) {
      replay_path = v;
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      opts.overload = true;
    } else if (std::strcmp(argv[i], "--inject-fault") == 0) {
      opts.inject_fault = true;
    } else if (std::strcmp(argv[i], "--dump") == 0) {
      dump = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      opts.verbose = true;
    } else {
      Usage();
      return 2;
    }
  }

  if (dump) {
    opts.gen.seed = seed;
    shareddb::testing::RandomWorkloadGenerator gen(opts.gen);
    std::printf("%s", gen.Dump().c_str());
    return 0;
  }

  if (!replay_path.empty()) {
    std::string log;
    const bool reproduced = shareddb::testing::ReplayArtifact(replay_path, &log);
    std::printf("%s", log.c_str());
    std::printf("replay %s: mismatch %s\n", replay_path.c_str(),
                reproduced ? "REPRODUCED" : "did not reproduce");
    return reproduced ? 1 : 0;
  }

  size_t failures = 0;
  size_t compared = 0;
  size_t aborted = 0;
  size_t crash_points = 0;
  size_t overload_ok = 0;
  size_t overload_rejected = 0;
  size_t overload_shed = 0;
  for (uint64_t s = seed; s < seed + iters; ++s) {
    opts.gen.seed = s;
    const SeedReport r = shareddb::testing::RunSeed(opts);
    compared += r.calls_compared;
    aborted += r.calls_aborted;
    crash_points += r.crash_points_checked;
    overload_ok += r.overload_ok;
    overload_rejected += r.overload_rejected;
    overload_shed += r.overload_shed;
    if (!r.ok) {
      ++failures;
      std::fprintf(stderr, "seed %llu FAILED: %s\n  config: %s\n",
                   static_cast<unsigned long long>(s), r.first_mismatch.c_str(),
                   r.config.c_str());
      if (!r.artifact_path.empty()) {
        std::fprintf(stderr, "  repro artifact: %s\n", r.artifact_path.c_str());
      }
    } else if (opts.verbose) {
      std::fprintf(stderr, "seed %llu ok (%s)\n",
                   static_cast<unsigned long long>(s), r.config.c_str());
    }
  }
  std::printf(
      "fuzz_differential: %llu seed(s), %zu failed, %zu calls compared, "
      "%zu aborted-by-design, %zu crash points recovered\n",
      static_cast<unsigned long long>(iters), failures, compared, aborted,
      crash_points);
  if (opts.overload) {
    std::printf(
        "  overload: %zu accepted, %zu rejected (backpressure), %zu shed "
        "(deadline)\n",
        overload_ok, overload_rejected, overload_shed);
  }
  return failures == 0 ? 0 : 1;
}
