#!/usr/bin/env sh
# Proves the locking discipline at compile time: configures a throwaway
# Clang build with -Wthread-safety promoted to an error and compiles the
# library. Exits 77 (the ctest/automake "skip" convention) when no Clang is
# on PATH — GCC has no thread-safety analysis, the annotations expand to
# nothing there.
#
# Usage: tools/check_thread_safety.sh [build-dir]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-thread-safety"}

if command -v clang++ >/dev/null 2>&1; then
  cxx=clang++
else
  echo "check_thread_safety: clang++ not found; skipping (exit 77)." >&2
  exit 77
fi

echo "check_thread_safety: compiling with $cxx -Wthread-safety -Werror=thread-safety"
cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_CXX_COMPILER="$cxx" \
  -DCMAKE_BUILD_TYPE=Release \
  -DSDB_BUILD_TESTS=OFF -DSDB_BUILD_BENCHMARKS=OFF -DSDB_BUILD_EXAMPLES=OFF \
  -DCMAKE_CXX_FLAGS="-Werror=thread-safety -Werror=thread-safety-analysis" \
  >/dev/null
cmake --build "$build_dir" --target shareddb -j "$(nproc 2>/dev/null || echo 2)"
echo "check_thread_safety: clean."
