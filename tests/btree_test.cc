// B+-tree tests: point/range/duplicate behaviour plus a randomized property
// sweep against std::multimap across fanouts (deep trees included).

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "common/rng.h"
#include "storage/btree_index.h"

namespace shareddb {
namespace {

TEST(BTreeTest, EmptyLookup) {
  BTreeIndex t;
  std::vector<RowId> rows;
  t.Lookup(Value::Int(1), &rows);
  EXPECT_TRUE(rows.empty());
  EXPECT_EQ(t.size(), 0u);
  t.CheckInvariants();
}

TEST(BTreeTest, InsertAndLookup) {
  BTreeIndex t;
  for (int i = 0; i < 100; ++i) t.Insert(Value::Int(i), static_cast<RowId>(i * 10));
  for (int i = 0; i < 100; ++i) {
    std::vector<RowId> rows;
    t.Lookup(Value::Int(i), &rows);
    ASSERT_EQ(rows.size(), 1u) << i;
    EXPECT_EQ(rows[0], static_cast<RowId>(i * 10));
  }
  EXPECT_EQ(t.size(), 100u);
  t.CheckInvariants();
}

TEST(BTreeTest, DuplicateKeys) {
  BTreeIndex t(4);  // tiny fanout forces duplicate runs across leaves
  for (RowId r = 0; r < 50; ++r) t.Insert(Value::Int(7), r);
  for (RowId r = 0; r < 5; ++r) t.Insert(Value::Int(8), 100 + r);
  std::vector<RowId> rows;
  t.Lookup(Value::Int(7), &rows);
  EXPECT_EQ(rows.size(), 50u);
  rows.clear();
  t.Lookup(Value::Int(8), &rows);
  EXPECT_EQ(rows.size(), 5u);
  t.CheckInvariants();
}

TEST(BTreeTest, RemoveSpecificEntry) {
  BTreeIndex t;
  t.Insert(Value::Int(1), 10);
  t.Insert(Value::Int(1), 11);
  t.Insert(Value::Int(2), 20);
  EXPECT_TRUE(t.Remove(Value::Int(1), 10));
  EXPECT_FALSE(t.Remove(Value::Int(1), 10));  // already gone
  EXPECT_FALSE(t.Remove(Value::Int(3), 1));   // never existed
  std::vector<RowId> rows;
  t.Lookup(Value::Int(1), &rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 11u);
  EXPECT_EQ(t.size(), 2u);
  t.CheckInvariants();
}

TEST(BTreeTest, RangeScanBounds) {
  BTreeIndex t;
  for (int i = 0; i < 50; ++i) t.Insert(Value::Int(i), static_cast<RowId>(i));
  std::vector<int64_t> got;
  t.Range(Value::Int(10), true, Value::Int(20), false,
          [&](const Value& k, RowId) {
            got.push_back(k.AsInt());
            return true;
          });
  ASSERT_EQ(got.size(), 10u);
  EXPECT_EQ(got.front(), 10);
  EXPECT_EQ(got.back(), 19);

  got.clear();
  t.Range(std::nullopt, true, Value::Int(3), true, [&](const Value& k, RowId) {
    got.push_back(k.AsInt());
    return true;
  });
  EXPECT_EQ(got, (std::vector<int64_t>{0, 1, 2, 3}));

  got.clear();
  t.Range(Value::Int(47), false, std::nullopt, true, [&](const Value& k, RowId) {
    got.push_back(k.AsInt());
    return true;
  });
  EXPECT_EQ(got, (std::vector<int64_t>{48, 49}));
}

TEST(BTreeTest, RangeEarlyStop) {
  BTreeIndex t;
  for (int i = 0; i < 100; ++i) t.Insert(Value::Int(i), static_cast<RowId>(i));
  int seen = 0;
  t.Range(std::nullopt, true, std::nullopt, true, [&](const Value&, RowId) {
    return ++seen < 5;
  });
  EXPECT_EQ(seen, 5);
}

TEST(BTreeTest, StringKeys) {
  BTreeIndex t;
  t.Insert(Value::Str("banana"), 1);
  t.Insert(Value::Str("apple"), 2);
  t.Insert(Value::Str("cherry"), 3);
  std::vector<std::string> got;
  t.Range(std::nullopt, true, std::nullopt, true, [&](const Value& k, RowId) {
    got.push_back(k.AsString());
    return true;
  });
  EXPECT_EQ(got, (std::vector<std::string>{"apple", "banana", "cherry"}));
}

TEST(BTreeTest, DeepTreeHeightGrows) {
  BTreeIndex t(4);
  EXPECT_EQ(t.height(), 1);
  for (int i = 0; i < 1000; ++i) t.Insert(Value::Int(i), static_cast<RowId>(i));
  EXPECT_GE(t.height(), 4);
  t.CheckInvariants();
  std::vector<RowId> rows;
  t.Lookup(Value::Int(999), &rows);
  ASSERT_EQ(rows.size(), 1u);
}

// --- randomized property sweep over fanouts ------------------------------------

class BTreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreePropertyTest, MatchesMultimapUnderRandomOps) {
  const int fanout = GetParam();
  BTreeIndex tree(fanout);
  std::multimap<int64_t, RowId> ref;
  Rng rng(fanout * 1000 + 17);

  for (int step = 0; step < 4000; ++step) {
    const int op = static_cast<int>(rng.Uniform(0, 9));
    const int64_t key = rng.Uniform(0, 60);
    if (op < 5) {  // insert
      const RowId row = static_cast<RowId>(rng.Uniform(0, 1000));
      tree.Insert(Value::Int(key), row);
      ref.emplace(key, row);
    } else if (op < 7) {  // remove a random existing entry for this key
      auto [lo, hi] = ref.equal_range(key);
      if (lo != hi) {
        tree.Remove(Value::Int(lo->first), lo->second);
        ref.erase(lo);
      }
    } else if (op < 8) {  // point lookup
      std::vector<RowId> rows;
      tree.Lookup(Value::Int(key), &rows);
      auto [lo, hi] = ref.equal_range(key);
      std::multiset<RowId> expect;
      for (auto it = lo; it != hi; ++it) expect.insert(it->second);
      EXPECT_EQ(std::multiset<RowId>(rows.begin(), rows.end()), expect)
          << "key=" << key << " step=" << step;
    } else {  // range scan
      const int64_t lo_key = rng.Uniform(0, 60);
      const int64_t hi_key = lo_key + rng.Uniform(0, 20);
      std::multiset<std::pair<int64_t, RowId>> got, expect;
      tree.Range(Value::Int(lo_key), true, Value::Int(hi_key), true,
                 [&](const Value& k, RowId r) {
                   got.insert({k.AsInt(), r});
                   return true;
                 });
      for (auto it = ref.lower_bound(lo_key); it != ref.end() && it->first <= hi_key;
           ++it) {
        expect.insert({it->first, it->second});
      }
      EXPECT_EQ(got, expect) << "range=[" << lo_key << "," << hi_key << "]";
    }
  }
  EXPECT_EQ(tree.size(), ref.size());
  tree.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BTreePropertyTest,
                         ::testing::Values(4, 8, 16, 64, 256));

}  // namespace
}  // namespace shareddb
