// Multi-client equivalence stress: N session threads concurrently driving
// TPC-W statement streams through the server's heartbeat driver must
// produce, per client, exactly the results of the serial
// one-heartbeat-per-call path — while actually sharing batches (mean batch
// occupancy > 1). This is the acceptance test for the client-facing
// front-end: concurrent shared execution is the default, not a special mode.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "api/server.h"
#include "testing_util.h"
#include "tpcw/global_plan.h"
#include "tpcw/harness.h"

namespace shareddb {
namespace tpcw {
namespace {

constexpr int kClients = 8;
constexpr int kCallsPerClient = 25;

TpcwScale TinyScale() {
  TpcwScale s;
  s.num_items = 300;
  s.num_ebs = 1;
  return s;
}

/// Deterministic read-only statement stream per (client, step). Read-only
/// keeps per-client results independent of how the driver interleaves
/// clients into generations, so concurrent == serial row-for-row.
StatementCall CallFor(int client, int step) {
  switch ((client * 7 + step) % 4) {
    case 0:
      return {"item_by_id", {Value::Int((client * 13 + step * 5) % 300)}};
    case 1:
      return {"search_by_subject", {Value::Int((client + step) % 24)}};
    case 2:
      return {"best_sellers",
              {Value::Int((client * 3 + step) % 24), Value::Int(kTodayDay - 60)}};
    default: {
      std::vector<Value> ids;
      for (int k = 0; k < 5; ++k) {
        ids.push_back(Value::Int((client * 17 + step * 3 + k * 41) % 300));
      }
      return {"items_by_id_list", std::move(ids)};
    }
  }
}

using PerClientResults = std::vector<std::vector<std::multiset<std::string>>>;

TEST(SessionStress, ConcurrentClientsMatchSerialAndShareBatches) {
  // --- concurrent run: 8 session threads through one live driver ----------
  auto db_c = MakeTpcwDatabase(TinyScale(), 23);
  Engine engine_c(BuildTpcwGlobalPlan(&db_c->catalog));
  api::ServerOptions opts;
  // Small gather window: concurrent clients join the same generation.
  opts.min_batch_window = std::chrono::milliseconds(1);
  api::Server server_c(&engine_c, opts);

  PerClientResults concurrent(kClients);
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    concurrent[static_cast<size_t>(c)].resize(kCallsPerClient);
    threads.emplace_back([&, c] {
      auto session = server_c.OpenSession();
      for (int i = 0; i < kCallsPerClient; ++i) {
        const StatementCall call = CallFor(c, i);
        const ResultSet rs = session->Execute(call.statement, call.params);
        if (!rs.status.ok()) ++errors;
        concurrent[static_cast<size_t>(c)][static_cast<size_t>(i)] =
            Canonical(rs);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(errors.load(), 0);

  server_c.Pause();  // quiesce so the final heartbeat's report is recorded
  const api::Server::Stats stats = server_c.stats();
  EXPECT_EQ(stats.statements_admitted,
            static_cast<uint64_t>(kClients * kCallsPerClient));
  // Shared execution actually happened: generations carried multiple
  // clients' statements on average.
  EXPECT_GT(stats.MeanBatchOccupancy(), 1.0)
      << "admitted=" << stats.statements_admitted
      << " batches=" << stats.batches;

  // --- serial reference: same streams, one call per heartbeat -------------
  auto db_s = MakeTpcwDatabase(TinyScale(), 23);
  Engine engine_s(BuildTpcwGlobalPlan(&db_s->catalog));
  api::Server server_s(&engine_s);
  auto session_s = server_s.OpenSession();
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kCallsPerClient; ++i) {
      const StatementCall call = CallFor(c, i);
      const ResultSet rs = session_s->Execute(call.statement, call.params);
      ASSERT_TRUE(rs.status.ok()) << call.statement;
      EXPECT_EQ(concurrent[static_cast<size_t>(c)][static_cast<size_t>(i)],
                Canonical(rs))
          << "client " << c << " call " << i << " (" << call.statement << ")";
    }
  }
}

// The same concurrency shape through the TPC-W SyncConnection interface:
// every connection is one client thread; interactions interleave freely.
TEST(SessionStress, ConcurrentConnectionsRunInteractions) {
  auto db = MakeTpcwDatabase(TinyScale(), 31);
  Engine engine(BuildTpcwGlobalPlan(&db->catalog));
  api::ServerOptions opts;
  opts.min_batch_window = std::chrono::milliseconds(1);
  api::Server server(&engine, opts);

  // Read-only browsing interactions so concurrent interleaving cannot
  // change any client's view.
  const WebInteraction kBrowse[] = {
      WebInteraction::kHome, WebInteraction::kSearchRequest,
      WebInteraction::kSearchResults, WebInteraction::kProductDetail,
      WebInteraction::kBestSellers};
  std::atomic<size_t> statements_run{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      SharedDbConnection conn(&server);
      EbState eb;
      eb.customer_id = 2 + c;
      Rng rng(100 + static_cast<uint64_t>(c));
      const TpcwScale scale = TinyScale();
      for (const WebInteraction wi : kBrowse) {
        statements_run +=
            RunInteraction(wi, &conn, scale, &eb, &db->ids, &rng);
      }
    });
  }
  for (auto& t : threads) t.join();
  server.Pause();  // quiesce so the final heartbeat's report is recorded
  EXPECT_EQ(server.stats().statements_admitted, statements_run.load());
  EXPECT_GT(server.stats().MeanBatchOccupancy(), 1.0);
}

}  // namespace
}  // namespace tpcw
}  // namespace shareddb
