// TaskPool unit tests: submit/steal/shutdown, caller participation,
// exception propagation, nesting, and the affinity contract for workers.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "runtime/task_pool.h"

namespace shareddb {
namespace {

TEST(TaskPoolTest, RunsEveryTask) {
  TaskPool pool(4);
  std::atomic<int> sum{0};
  TaskGroup group(&pool);
  for (int i = 1; i <= 100; ++i) {
    group.Run([&sum, i] { sum.fetch_add(i); });
  }
  group.Wait();
  EXPECT_EQ(sum.load(), 5050);
  EXPECT_EQ(pool.tasks_executed(), 100u);
}

TEST(TaskPoolTest, ZeroWorkerPoolRunsInline) {
  TaskPool pool(0);
  std::atomic<int> count{0};
  const std::thread::id self = std::this_thread::get_id();
  TaskGroup group(&pool);
  for (int i = 0; i < 10; ++i) {
    group.Run([&count, self] {
      EXPECT_EQ(std::this_thread::get_id(), self);  // inline on the caller
      ++count;
    });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 10);
}

TEST(TaskPoolTest, NullPoolRunsInline) {
  std::atomic<int> count{0};
  TaskGroup group(nullptr);
  group.Run([&count] { ++count; });
  group.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(TaskPoolTest, WorkIsStolenAcrossWorkers) {
  // A group enqueues all its tasks onto ONE home deque. Occupy one worker
  // with a blocker, then enqueue a second task while the waiter is NOT yet
  // participating: the only thread that can run it is the other worker, and
  // it reaches the task by stealing from a deque it does not own. (If the
  // blocker itself was stolen, that already recorded the steal.)
  TaskPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<bool> blocker_running{false};
  std::atomic<bool> second_ran{false};
  TaskGroup group(&pool);
  group.Run([&] {
    blocker_running = true;
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  while (!blocker_running.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  group.Run([&] { second_ran = true; });
  while (!second_ran.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(pool.worker_steals(), 1u);
  release = true;
  group.Wait();
  EXPECT_EQ(pool.tasks_executed(), 2u);
}

TEST(TaskPoolTest, WaiterParticipatesWhenWorkersAreBusy) {
  // One worker, blocked on a slow task: the waiting thread must drain the
  // rest of the queue itself instead of deadlocking.
  TaskPool pool(1);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  group.Run([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ++count;
  });
  for (int i = 0; i < 20; ++i) {
    group.Run([&count] { ++count; });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 21);
}

TEST(TaskPoolTest, ExceptionPropagatesToWait) {
  TaskPool pool(2);
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 8; ++i) {
    group.Run([&ran, i] {
      ++ran;
      if (i == 3) throw std::runtime_error("boom");
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 8);  // the failing task does not cancel the rest

  // The pool survives and can run new groups.
  TaskGroup again(&pool);
  std::atomic<int> ok{0};
  for (int i = 0; i < 4; ++i) again.Run([&ok] { ++ok; });
  again.Wait();
  EXPECT_EQ(ok.load(), 4);
}

TEST(TaskPoolTest, ExceptionPropagatesInline) {
  TaskGroup group(nullptr);
  group.Run([] { throw std::runtime_error("inline boom"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

TEST(TaskPoolTest, NestedGroupsDoNotDeadlock) {
  // A pool task forks its own group on the same pool (the partitioned-scan
  // shape: partition tasks fan out scan morsels). Waiting tasks participate,
  // so this completes even when tasks outnumber workers.
  TaskPool pool(2);
  std::atomic<int> leaves{0};
  TaskGroup outer(&pool);
  for (int p = 0; p < 4; ++p) {
    outer.Run([&pool, &leaves] {
      TaskGroup inner(&pool);
      for (int m = 0; m < 8; ++m) {
        inner.Run([&leaves] { ++leaves; });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(leaves.load(), 32);
}

TEST(TaskPoolTest, ManyGroupsStress) {
  TaskPool pool(4);
  std::atomic<int64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    TaskGroup group(&pool);
    for (int i = 0; i < 40; ++i) {
      group.Run([&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
    }
    group.Wait();
  }
  EXPECT_EQ(sum.load(), 50 * 40);
}

TEST(TaskPoolTest, ShutdownWithIdleWorkersJoinsCleanly) {
  auto pool = std::make_unique<TaskPool>(4);
  TaskGroup group(pool.get());
  for (int i = 0; i < 16; ++i) group.Run([] {});
  group.Wait();
  pool.reset();  // must join without hanging
  SUCCEED();
}

}  // namespace
}  // namespace shareddb
