// Crash-fault injection tests: the durability stack (Wal, checkpoint,
// Engine group commit) running over storage::FaultyEnv, which can tear
// appends mid-record, ack fsyncs without making bytes durable, fail syncs
// outright, and simulate power loss. Every scenario asserts the recovery
// contract: committed batches survive, damaged tails are truncated, and
// wrong data is never replayed.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/plan_builder.h"
#include "storage/io.h"
#include "storage/wal.h"

namespace shareddb {
namespace {

using storage::FaultInjection;
using storage::FaultyEnv;

SchemaPtr KvSchema() {
  return Schema::Make({{"id", ValueType::kInt}, {"val", ValueType::kInt}});
}

Tuple Kv(int64_t id, int64_t val) { return {Value::Int(id), Value::Int(val)}; }

/// One-table database with insert/update/point-query statements; every
/// ExecuteSyncNamed call runs as its own heartbeat batch (one commit each).
class RecoveryTest : public ::testing::Test {
 protected:
  std::unique_ptr<GlobalPlan> BuildPlan(Catalog* cat) {
    Table* kv = cat->GetTable("kv") != nullptr ? cat->MustGetTable("kv")
                                               : cat->CreateTable("kv", KvSchema());
    if (kv->PhysicalSize() == 0) {
      for (int i = 0; i < 4; ++i) kv->Insert(Kv(i, i * 10), 1);
      cat->snapshots().Reset(1);
    }
    GlobalPlanBuilder b(cat);
    const SchemaPtr s = kv->schema();
    b.AddQuery("get", logical::Scan("kv", Expr::Eq(Expr::Column(*s, "id"),
                                                   Expr::Param(0))));
    b.AddInsert("put", "kv", {Expr::Param(0), Expr::Param(1)});
    b.AddUpdate("bump", "kv",
                {{"val", Expr::Add(Expr::Column(1), Expr::Param(1))}},
                Expr::Eq(Expr::Column(0), Expr::Param(0)));
    return b.Build();
  }

  EngineOptions GroupCommit(FaultyEnv* env, const std::string& wal_path,
                            bool truncate = true) {
    EngineOptions opts;
    opts.durability.mode = DurabilityMode::kGroupCommit;
    opts.durability.wal_path = wal_path;
    opts.durability.env = env;
    opts.durability.truncate_wal = truncate;
    return opts;
  }

  /// The value of row `id` at the catalog's own read snapshot, or -1.
  static int64_t ValueOf(Catalog* cat, int64_t id) {
    int64_t out = -1;
    cat->MustGetTable("kv")->ScanVisible(
        cat->snapshots().ReadSnapshot(), [&](RowId, const Tuple& t) {
          if (t[0].AsInt() == id) out = t[1].AsInt();
          return true;
        });
    return out;
  }
};

// ---------------------------------------------------------------------------
// FaultyEnv semantics (the test double itself must be trustworthy).

TEST_F(RecoveryTest, PowerLossKeepsSyncedPrefixPlusBoundedTail) {
  FaultyEnv env;
  std::unique_ptr<storage::File> f;
  ASSERT_TRUE(env.NewAppendableFile("f", true, &f).ok());
  const std::string durable(100, 'd');
  const std::string volatile_tail(50, 'v');
  ASSERT_TRUE(f->Append(durable.data(), durable.size()).ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append(volatile_tail.data(), volatile_tail.size()).ok());
  EXPECT_EQ(env.FileSize("f"), 150u);
  EXPECT_EQ(env.SyncedSize("f"), 100u);

  env.PowerLoss(/*torn_tail_bytes=*/10);
  EXPECT_GE(env.FileSize("f"), 100u);
  EXPECT_LE(env.FileSize("f"), 110u);
  EXPECT_EQ(env.Contents("f").substr(0, 100), durable);

  // The pre-crash handle is wedged; a fresh open works.
  EXPECT_FALSE(f->Append("x", 1).ok());
  std::unique_ptr<storage::File> g;
  ASSERT_TRUE(env.NewAppendableFile("f", false, &g).ok());
  EXPECT_TRUE(g->Append("x", 1).ok());
}

TEST_F(RecoveryTest, CrashBudgetTearsTheCrossingAppend) {
  FaultyEnv env;
  FaultInjection faults;
  faults.crash_after_bytes = 10;
  env.SetFaults("f", faults);
  std::unique_ptr<storage::File> f;
  ASSERT_TRUE(env.NewAppendableFile("f", true, &f).ok());
  ASSERT_TRUE(f->Append("01234567", 8).ok());   // within budget
  EXPECT_FALSE(f->Append("abcdefgh", 8).ok());  // crosses: torn at byte 10
  EXPECT_EQ(env.Contents("f"), "01234567ab");
  EXPECT_FALSE(f->Append("x", 1).ok());  // wedged until cleared
  env.ClearFaults("f");
  std::unique_ptr<storage::File> g;
  ASSERT_TRUE(env.NewAppendableFile("f", false, &g).ok());
  EXPECT_TRUE(g->Append("x", 1).ok());
}

// ---------------------------------------------------------------------------
// WAL over injected faults.

TEST_F(RecoveryTest, DroppedSyncsLoseAckedBatchesOnPowerLoss) {
  // The disk acks fsync but lies. The engine cannot detect this (nobody
  // can); the contract is that recovery still lands on SOME batch boundary
  // — the last truly durable one — instead of corrupt state.
  FaultyEnv env;
  uint64_t durable_end = 0;
  {
    Wal wal("wal", &env);
    ASSERT_TRUE(wal.Open(true).ok());
    wal.LogInsert(0, 2, 0, Kv(1, 10));
    wal.LogCommit(2);
    ASSERT_TRUE(wal.Sync().ok());  // honest sync: batch 2 is durable
    durable_end = wal.bytes_logged();

    FaultInjection faults;
    faults.drop_syncs = true;
    env.SetFaults("wal", faults);
    wal.LogInsert(0, 3, 1, Kv(2, 20));
    wal.LogCommit(3);
    ASSERT_TRUE(wal.Sync().ok());  // acked... but the disk lied
    EXPECT_EQ(env.SyncedSize("wal"), durable_end);
  }
  env.PowerLoss(/*torn_tail_bytes=*/3);

  Catalog cat;
  cat.CreateTable("kv", KvSchema());
  RecoverOptions opts;
  opts.wal_path = "wal";
  opts.env = &env;
  RecoveryReport report;
  ASSERT_TRUE(Recover(&cat, opts, &report).ok());
  EXPECT_EQ(report.batches_committed, 1u);  // batch 3 is gone
  EXPECT_EQ(cat.snapshots().ReadSnapshot(), 2u);
  EXPECT_EQ(cat.MustGetTable("kv")->PhysicalSize(), 1u);
  EXPECT_EQ(env.FileSize("wal"), durable_end);  // torn tail truncated away
}

TEST_F(RecoveryTest, FailedSyncReportsAndRecoveryLandsOnBoundary) {
  FaultyEnv env;
  {
    Wal wal("wal", &env);
    ASSERT_TRUE(wal.Open(true).ok());
    wal.LogInsert(0, 2, 0, Kv(1, 10));
    wal.LogCommit(2);
    ASSERT_TRUE(wal.Sync().ok());

    FaultInjection faults;
    faults.fail_syncs = true;
    env.SetFaults("wal", faults);
    wal.LogInsert(0, 3, 1, Kv(2, 20));
    wal.LogCommit(3);
    EXPECT_FALSE(wal.Sync().ok());  // honest failure, caller knows
  }
  env.PowerLoss(0);

  Catalog cat;
  cat.CreateTable("kv", KvSchema());
  RecoverOptions opts;
  opts.wal_path = "wal";
  opts.env = &env;
  RecoveryReport report;
  ASSERT_TRUE(Recover(&cat, opts, &report).ok());
  EXPECT_EQ(report.batches_committed, 1u);
  EXPECT_EQ(cat.snapshots().ReadSnapshot(), 2u);
}

// ---------------------------------------------------------------------------
// Checkpoints under crashes.

TEST_F(RecoveryTest, CrashMidCheckpointKeepsThePreviousCheckpoint) {
  // tmp → fsync → rename means a crash while writing the NEW checkpoint
  // must leave the OLD one loadable, never a torn file under `path`.
  FaultyEnv env;
  Catalog v1;
  Table* t = v1.CreateTable("kv", KvSchema());
  t->Insert(Kv(1, 10), 1);
  v1.snapshots().Reset(1);
  ASSERT_TRUE(WriteCheckpoint(v1, "ckpt", &env).ok());
  const std::string old_bytes = env.Contents("ckpt");

  t->Insert(Kv(2, 20), 2);
  v1.snapshots().Reset(2);
  FaultInjection faults;
  faults.crash_after_bytes = 5;  // tear the tmp file almost immediately
  env.SetFaults("ckpt.tmp", faults);
  EXPECT_FALSE(WriteCheckpoint(v1, "ckpt", &env).ok());
  EXPECT_EQ(env.Contents("ckpt"), old_bytes);  // untouched

  env.PowerLoss(0);
  Catalog fresh;
  fresh.CreateTable("kv", KvSchema());
  ASSERT_TRUE(LoadCheckpoint(&fresh, "ckpt", &env).ok());
  EXPECT_EQ(fresh.MustGetTable("kv")->PhysicalSize(), 1u);
  EXPECT_EQ(fresh.snapshots().ReadSnapshot(), 1u);
}

TEST_F(RecoveryTest, CheckpointSyncFailureLeavesOldCheckpoint) {
  FaultyEnv env;
  Catalog v1;
  Table* t = v1.CreateTable("kv", KvSchema());
  t->Insert(Kv(1, 10), 1);
  v1.snapshots().Reset(1);
  ASSERT_TRUE(WriteCheckpoint(v1, "ckpt", &env).ok());
  const std::string old_bytes = env.Contents("ckpt");

  t->Insert(Kv(2, 20), 2);
  v1.snapshots().Reset(2);
  FaultInjection faults;
  faults.fail_syncs = true;  // the new bytes never become durable
  env.SetFaults("ckpt.tmp", faults);
  EXPECT_FALSE(WriteCheckpoint(v1, "ckpt", &env).ok());
  EXPECT_EQ(env.Contents("ckpt"), old_bytes);
}

TEST_F(RecoveryTest, CorruptCheckpointIsIoErrorNeverPartialState) {
  FaultyEnv env;
  Catalog cat;
  Table* t = cat.CreateTable("kv", KvSchema());
  for (int i = 0; i < 8; ++i) t->Insert(Kv(i, i), 1);
  cat.snapshots().Reset(1);
  ASSERT_TRUE(WriteCheckpoint(cat, "ckpt", &env).ok());
  env.FlipBit("ckpt", env.FileSize("ckpt") / 2);

  Catalog fresh;
  fresh.CreateTable("kv", KvSchema());
  const Status s = LoadCheckpoint(&fresh, "ckpt", &env);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(fresh.MustGetTable("kv")->PhysicalSize(), 0u);  // no partial load
  EXPECT_EQ(fresh.snapshots().ReadSnapshot(), 0u);
}

// ---------------------------------------------------------------------------
// Engine-level: group commit, wal_status latching, availability.

TEST_F(RecoveryTest, EngineLatchesWalErrorAndKeepsServing) {
  FaultyEnv env;
  Catalog cat;
  Engine engine(BuildPlan(&cat), GroupCommit(&env, "wal"));
  ASSERT_EQ(engine.ExecuteSyncNamed("bump", {Value::Int(0), Value::Int(5)})
                .update_count,
            1u);
  ASSERT_TRUE(engine.wal_status().ok());

  FaultInjection faults;
  faults.fail_syncs = true;
  env.SetFaults("wal", faults);
  engine.ExecuteSyncNamed("bump", {Value::Int(1), Value::Int(5)});
  EXPECT_EQ(engine.wal_status().code(), StatusCode::kIoError);  // latched

  // Availability over durability: the heartbeat keeps serving reads and
  // the in-memory state is current even though the log is stuck.
  ResultSet rs = engine.ExecuteSyncNamed("get", {Value::Int(1)});
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 15);
  EXPECT_EQ(engine.wal_status().code(), StatusCode::kIoError);  // still latched
}

TEST_F(RecoveryTest, EngineTornWriteCrashRecoversToBatchBoundary) {
  FaultyEnv env;
  uint64_t boundary_after_two = 0;
  {
    Catalog cat;
    Engine engine(BuildPlan(&cat), GroupCommit(&env, "wal"));
    engine.ExecuteSyncNamed("bump", {Value::Int(0), Value::Int(7)});   // v2
    engine.ExecuteSyncNamed("put", {Value::Int(100), Value::Int(1)});  // v3
    boundary_after_two = engine.wal_bytes_logged();
    ASSERT_EQ(env.SyncedSize("wal"), boundary_after_two);

    // The disk dies partway through the next batch's log append.
    FaultInjection faults;
    faults.crash_after_bytes = 10;
    env.SetFaults("wal", faults);
    engine.ExecuteSyncNamed("bump", {Value::Int(0), Value::Int(100)});  // v4
    EXPECT_FALSE(engine.wal_status().ok());
  }
  env.PowerLoss(/*torn_tail_bytes=*/64);

  Catalog recovered;
  Table* kv = recovered.CreateTable("kv", KvSchema());
  for (int i = 0; i < 4; ++i) kv->RecoverAppendRow(Row{Kv(i, i * 10), 1, kVersionMax});
  recovered.snapshots().Reset(1);
  RecoverOptions opts;
  opts.wal_path = "wal";
  opts.env = &env;
  RecoveryReport report;
  ASSERT_TRUE(Recover(&recovered, opts, &report).ok());
  EXPECT_EQ(report.batches_committed, 2u);  // v2 and v3; the torn v4 is gone
  EXPECT_EQ(recovered.snapshots().ReadSnapshot(), 3u);
  EXPECT_EQ(ValueOf(&recovered, 0), 7);     // v2's bump, not v4's
  EXPECT_EQ(ValueOf(&recovered, 100), 1);   // v3's insert
  EXPECT_EQ(env.FileSize("wal"), boundary_after_two);
}

TEST_F(RecoveryTest, RecoverAppendRecoverRoundTrip) {
  // Crash → recover (truncates the damaged tail) → reopen the SAME log for
  // appending (truncate_wal=false) → commit more → recover again. The
  // second recovery must see pre-crash and post-crash batches seamlessly.
  FaultyEnv env;
  {
    Catalog cat;
    Engine engine(BuildPlan(&cat), GroupCommit(&env, "wal"));
    engine.ExecuteSyncNamed("bump", {Value::Int(0), Value::Int(7)});  // v2
    engine.ExecuteSyncNamed("bump", {Value::Int(1), Value::Int(8)});  // v3
  }
  // Power loss mid-batch: chop 3 bytes off the log — v3's commit record is
  // torn, so batch v3 never happened.
  const std::string full = env.Contents("wal");
  env.SetContents("wal", full.substr(0, full.size() - 3));

  const auto seed_base = [](Catalog* cat) {
    Table* kv = cat->CreateTable("kv", KvSchema());
    for (int i = 0; i < 4; ++i) {
      kv->RecoverAppendRow(Row{Kv(i, i * 10), 1, kVersionMax});
    }
    cat->snapshots().Reset(1);
  };

  Catalog recovered;
  seed_base(&recovered);
  RecoverOptions opts;
  opts.wal_path = "wal";
  opts.env = &env;
  RecoveryReport report;
  ASSERT_TRUE(Recover(&recovered, opts, &report).ok());
  EXPECT_EQ(report.batches_committed, 1u);  // v2 survived, v3 is gone
  EXPECT_GT(report.bytes_discarded, 0u);
  ASSERT_EQ(recovered.snapshots().ReadSnapshot(), 2u);

  // Resume service on the recovered state, APPENDING to the truncated log.
  {
    Engine engine(BuildPlan(&recovered),
                  GroupCommit(&env, "wal", /*truncate=*/false));
    ASSERT_EQ(engine.ExecuteSyncNamed("bump", {Value::Int(2), Value::Int(9)})
                  .update_count,
              1u);  // commits as the NEW v3
    ASSERT_TRUE(engine.wal_status().ok());
  }

  // Final recovery sees the pre-crash batch and the post-recovery batch.
  Catalog final_cat;
  seed_base(&final_cat);
  RecoveryReport final_report;
  ASSERT_TRUE(Recover(&final_cat, opts, &final_report).ok());
  EXPECT_EQ(final_report.batches_committed, 2u);
  EXPECT_EQ(final_report.stop_reason, "eof");
  EXPECT_EQ(final_report.bytes_discarded, 0u);
  EXPECT_EQ(final_cat.snapshots().ReadSnapshot(), 3u);
  EXPECT_EQ(ValueOf(&final_cat, 0), 7);    // old v2
  EXPECT_EQ(ValueOf(&final_cat, 1), 10);   // torn v3 never happened
  EXPECT_EQ(ValueOf(&final_cat, 2), 29);   // new v3 (20 + 9)
}

TEST_F(RecoveryTest, EngineCheckpointPlusLogTailRecovery) {
  // Checkpoint mid-history, keep committing, then recover from checkpoint +
  // log tail: records at or before the checkpoint version must be skipped.
  FaultyEnv env;
  {
    Catalog cat;
    Engine engine(BuildPlan(&cat), GroupCommit(&env, "wal"));
    engine.ExecuteSyncNamed("put", {Value::Int(100), Value::Int(1)});  // v2
    ASSERT_TRUE(engine.Checkpoint("ckpt").ok());
    engine.ExecuteSyncNamed("bump", {Value::Int(100), Value::Int(5)});  // v3
  }
  Catalog recovered;
  recovered.CreateTable("kv", KvSchema());  // checkpoint stores rows, not schema
  RecoverOptions opts;
  opts.checkpoint_path = "ckpt";
  opts.wal_path = "wal";
  opts.env = &env;
  RecoveryReport report;
  ASSERT_TRUE(Recover(&recovered, opts, &report).ok());
  EXPECT_TRUE(report.checkpoint_loaded);
  EXPECT_EQ(report.batches_committed, 1u);  // only v3 lies beyond the checkpoint
  EXPECT_EQ(recovered.snapshots().ReadSnapshot(), 3u);
  EXPECT_EQ(ValueOf(&recovered, 100), 6);  // 1 from v2 (checkpoint) + 5 from v3
}

}  // namespace
}  // namespace shareddb
