// Durability tests: WAL append/replay, commit filtering (atomic batches),
// checkpoint round-trip, full recovery, torn-tail tolerance.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "runtime/task_pool.h"
#include "storage/wal.h"

namespace shareddb {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sdb_wal_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& f) const { return (dir_ / f).string(); }

  static SchemaPtr S() {
    return Schema::Make({{"id", ValueType::kInt},
                         {"name", ValueType::kString},
                         {"score", ValueType::kDouble}});
  }
  static Tuple R(int64_t id, const std::string& n, double s) {
    return {Value::Int(id), Value::Str(n), Value::Double(s)};
  }

  std::filesystem::path dir_;
};

TEST_F(WalTest, AppendAndReplayRoundTrip) {
  Wal wal(Path("wal"));
  ASSERT_TRUE(wal.Open(true).ok());
  wal.LogInsert(0, 1, 0, R(1, "ann", 1.5));
  wal.LogUpdate(0, 2, 0, R(1, "ann", 2.5));
  wal.LogDelete(1, 2, 7);
  wal.LogCommit(2);
  ASSERT_TRUE(wal.Flush().ok());
  wal.Close();

  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::Replay(Path("wal"), [&](const WalRecord& r) {
                records.push_back(r);
              }).ok());
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].op, WalOp::kInsert);
  EXPECT_EQ(records[0].tuple[1].AsString(), "ann");
  EXPECT_EQ(records[1].op, WalOp::kUpdate);
  EXPECT_DOUBLE_EQ(records[1].tuple[2].AsDouble(), 2.5);
  EXPECT_EQ(records[2].op, WalOp::kDelete);
  EXPECT_EQ(records[2].table_id, 1u);
  EXPECT_EQ(records[2].row, 7u);
  EXPECT_EQ(records[3].op, WalOp::kCommit);
  EXPECT_EQ(records[3].version, 2u);
}

TEST_F(WalTest, ConcurrentAppendsStaySerialized) {
  // Table write observers fire from whichever thread mutates the table; the
  // parallel partitioned update path makes that several threads against ONE
  // shared log. Every record must land complete — interleaved bytes would
  // corrupt the tail (and replay would silently stop there).
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  Wal wal(Path("wal"));
  ASSERT_TRUE(wal.Open(true).ok());
  {
    TaskPool pool(kThreads);
    TaskGroup group(&pool);
    for (int t = 0; t < kThreads; ++t) {
      group.Run([&wal, t] {
        for (int i = 0; i < kPerThread; ++i) {
          wal.LogInsert(static_cast<uint32_t>(t), 1,
                        static_cast<RowId>(t * kPerThread + i),
                        R(t * kPerThread + i, "row" + std::to_string(i), i * 0.5));
        }
      });
    }
    group.Wait();
  }
  wal.LogCommit(1);
  ASSERT_TRUE(wal.Flush().ok());
  wal.Close();
  EXPECT_EQ(wal.records_written(), kThreads * kPerThread + 1u);

  size_t records = 0;
  std::vector<size_t> per_table(kThreads, 0);
  ASSERT_TRUE(Wal::Replay(Path("wal"), [&](const WalRecord& r) {
                ++records;
                if (r.op == WalOp::kInsert) {
                  ASSERT_LT(r.table_id, static_cast<uint32_t>(kThreads));
                  ASSERT_EQ(r.tuple.size(), 3u);
                  ++per_table[r.table_id];
                }
              }).ok());
  EXPECT_EQ(records, kThreads * kPerThread + 1u);  // no torn tail, no loss
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_table[static_cast<size_t>(t)], static_cast<size_t>(kPerThread));
  }
}

TEST_F(WalTest, ReplayMissingFileIsNotFound) {
  const Status s = Wal::Replay(Path("nonexistent"), [](const WalRecord&) {});
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(WalTest, RecoverAppliesOnlyCommittedVersions) {
  {
    Wal wal(Path("wal"));
    ASSERT_TRUE(wal.Open(true).ok());
    wal.LogInsert(0, 1, 0, R(1, "committed", 1));
    wal.LogCommit(1);
    wal.LogInsert(0, 2, 1, R(2, "uncommitted", 2));
    // No commit record for version 2 (crash mid-batch).
    ASSERT_TRUE(wal.Flush().ok());
  }
  Catalog cat;
  cat.CreateTable("t", S());
  ASSERT_TRUE(Recover(&cat, "", Path("wal")).ok());
  Table* t = cat.MustGetTable("t");
  EXPECT_EQ(t->VisibleCount(1), 1u);
  EXPECT_EQ(t->PhysicalSize(), 1u);  // the uncommitted insert was dropped
  EXPECT_EQ(cat.snapshots().ReadSnapshot(), 1u);
}

TEST_F(WalTest, RecoverReplaysUpdateChains) {
  {
    Wal wal(Path("wal"));
    ASSERT_TRUE(wal.Open(true).ok());
    wal.LogInsert(0, 1, 0, R(1, "v1", 1));
    wal.LogCommit(1);
    wal.LogUpdate(0, 2, 0, R(1, "v2", 2));
    wal.LogCommit(2);
    wal.LogDelete(0, 3, 1);  // deletes the updated version (row id 1)
    wal.LogCommit(3);
    ASSERT_TRUE(wal.Flush().ok());
  }
  Catalog cat;
  cat.CreateTable("t", S());
  ASSERT_TRUE(Recover(&cat, "", Path("wal")).ok());
  Table* t = cat.MustGetTable("t");
  EXPECT_EQ(t->VisibleCount(1), 1u);
  EXPECT_EQ(t->VisibleCount(2), 1u);
  EXPECT_EQ(t->VisibleCount(3), 0u);
  size_t n2 = 0;
  t->ScanVisible(2, [&](RowId, const Tuple& row) {
    EXPECT_EQ(row[1].AsString(), "v2");
    ++n2;
    return true;
  });
  EXPECT_EQ(n2, 1u);
  EXPECT_EQ(cat.snapshots().ReadSnapshot(), 3u);
}

TEST_F(WalTest, CheckpointRoundTrip) {
  Catalog cat;
  Table* t = cat.CreateTable("t", S());
  t->Insert(R(1, "a", 1), 1);
  const RowId r = t->Insert(R(2, "b", 2), 1);
  t->UpdateRow(r, R(2, "b2", 3), 2);
  cat.snapshots().Reset(2);
  ASSERT_TRUE(WriteCheckpoint(cat, Path("ckpt")).ok());

  Catalog fresh;
  fresh.CreateTable("t", S());
  ASSERT_TRUE(LoadCheckpoint(&fresh, Path("ckpt")).ok());
  Table* ft = fresh.MustGetTable("t");
  EXPECT_EQ(ft->PhysicalSize(), 3u);
  EXPECT_EQ(ft->VisibleCount(1), 2u);
  EXPECT_EQ(ft->VisibleCount(2), 2u);
  EXPECT_EQ(fresh.snapshots().ReadSnapshot(), 2u);
  size_t hits = 0;
  ft->ScanVisible(2, [&](RowId, const Tuple& row) {
    if (row[0].AsInt() == 2) {
      EXPECT_EQ(row[1].AsString(), "b2");
      ++hits;
    }
    return true;
  });
  EXPECT_EQ(hits, 1u);
}

TEST_F(WalTest, RecoverFromCheckpointPlusTail) {
  // Build state: checkpoint after version 1, WAL tail for versions 2..3.
  Catalog cat;
  Table* t = cat.CreateTable("t", S());
  t->Insert(R(1, "base", 1), 1);
  cat.snapshots().Reset(1);
  ASSERT_TRUE(WriteCheckpoint(cat, Path("ckpt")).ok());
  {
    Wal wal(Path("wal"));
    ASSERT_TRUE(wal.Open(true).ok());
    // Version 1 records would be in the checkpoint; replay must skip them.
    wal.LogInsert(0, 1, 0, R(1, "base", 1));
    wal.LogCommit(1);
    wal.LogInsert(0, 2, 1, R(2, "tail", 2));
    wal.LogCommit(2);
    wal.LogUpdate(0, 3, 0, R(1, "patched", 9));
    wal.LogCommit(3);
    ASSERT_TRUE(wal.Flush().ok());
  }
  Catalog fresh;
  fresh.CreateTable("t", S());
  ASSERT_TRUE(Recover(&fresh, Path("ckpt"), Path("wal")).ok());
  Table* ft = fresh.MustGetTable("t");
  EXPECT_EQ(ft->VisibleCount(3), 2u);
  EXPECT_EQ(fresh.snapshots().ReadSnapshot(), 3u);
  bool saw_patched = false;
  ft->ScanVisible(3, [&](RowId, const Tuple& row) {
    if (row[1].AsString() == "patched") saw_patched = true;
    return true;
  });
  EXPECT_TRUE(saw_patched);
}

TEST_F(WalTest, TornTailIsIgnored) {
  {
    Wal wal(Path("wal"));
    ASSERT_TRUE(wal.Open(true).ok());
    wal.LogInsert(0, 1, 0, R(1, "good", 1));
    wal.LogCommit(1);
    ASSERT_TRUE(wal.Flush().ok());
  }
  // Append garbage simulating a torn write.
  {
    std::FILE* f = std::fopen(Path("wal").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = {0x01, 0x02};
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::Replay(Path("wal"), [&](const WalRecord& r) {
                records.push_back(r);
              }).ok());
  EXPECT_EQ(records.size(), 2u);  // the garbage tail is dropped
}

TEST_F(WalTest, RecoverWithoutAnyFilesIsOk) {
  Catalog cat;
  cat.CreateTable("t", S());
  EXPECT_TRUE(Recover(&cat, Path("no_ckpt"), Path("no_wal")).ok());
  EXPECT_EQ(cat.snapshots().ReadSnapshot(), 0u);
}

}  // namespace
}  // namespace shareddb
