// Durability tests: WAL append/replay, commit filtering (atomic batches),
// checkpoint round-trip, full recovery, torn-tail tolerance.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "runtime/task_pool.h"
#include "storage/wal.h"

namespace shareddb {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sdb_wal_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& f) const { return (dir_ / f).string(); }

  static SchemaPtr S() {
    return Schema::Make({{"id", ValueType::kInt},
                         {"name", ValueType::kString},
                         {"score", ValueType::kDouble}});
  }
  static Tuple R(int64_t id, const std::string& n, double s) {
    return {Value::Int(id), Value::Str(n), Value::Double(s)};
  }

  /// XORs 0x10 into one byte of a real file (media corruption by hand).
  static void FlipByte(const std::string& path, uint64_t offset) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char b;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x10);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
  }

  std::filesystem::path dir_;
};

TEST_F(WalTest, AppendAndReplayRoundTrip) {
  Wal wal(Path("wal"));
  ASSERT_TRUE(wal.Open(true).ok());
  wal.LogInsert(0, 1, 0, R(1, "ann", 1.5));
  wal.LogUpdate(0, 2, 0, R(1, "ann", 2.5));
  wal.LogDelete(1, 2, 7);
  wal.LogCommit(2);
  ASSERT_TRUE(wal.Flush().ok());
  ASSERT_TRUE(wal.Close().ok());

  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::Replay(Path("wal"), [&](const WalRecord& r) {
                records.push_back(r);
              }).ok());
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].op, WalOp::kInsert);
  EXPECT_EQ(records[0].tuple[1].AsString(), "ann");
  EXPECT_EQ(records[1].op, WalOp::kUpdate);
  EXPECT_DOUBLE_EQ(records[1].tuple[2].AsDouble(), 2.5);
  EXPECT_EQ(records[2].op, WalOp::kDelete);
  EXPECT_EQ(records[2].table_id, 1u);
  EXPECT_EQ(records[2].row, 7u);
  EXPECT_EQ(records[3].op, WalOp::kCommit);
  EXPECT_EQ(records[3].version, 2u);
}

TEST_F(WalTest, ConcurrentAppendsStaySerialized) {
  // Table write observers fire from whichever thread mutates the table; the
  // parallel partitioned update path makes that several threads against ONE
  // shared log. Every record must land complete — interleaved bytes would
  // corrupt the tail (and replay would silently stop there).
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  Wal wal(Path("wal"));
  ASSERT_TRUE(wal.Open(true).ok());
  {
    TaskPool pool(kThreads);
    TaskGroup group(&pool);
    for (int t = 0; t < kThreads; ++t) {
      group.Run([&wal, t] {
        for (int i = 0; i < kPerThread; ++i) {
          wal.LogInsert(static_cast<uint32_t>(t), 1,
                        static_cast<RowId>(t * kPerThread + i),
                        R(t * kPerThread + i, "row" + std::to_string(i), i * 0.5));
        }
      });
    }
    group.Wait();
  }
  wal.LogCommit(1);
  ASSERT_TRUE(wal.Flush().ok());
  ASSERT_TRUE(wal.Close().ok());
  EXPECT_EQ(wal.records_written(), kThreads * kPerThread + 1u);

  size_t records = 0;
  std::vector<size_t> per_table(kThreads, 0);
  ASSERT_TRUE(Wal::Replay(Path("wal"), [&](const WalRecord& r) {
                ++records;
                if (r.op == WalOp::kInsert) {
                  ASSERT_LT(r.table_id, static_cast<uint32_t>(kThreads));
                  ASSERT_EQ(r.tuple.size(), 3u);
                  ++per_table[r.table_id];
                }
              }).ok());
  EXPECT_EQ(records, kThreads * kPerThread + 1u);  // no torn tail, no loss
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_table[static_cast<size_t>(t)], static_cast<size_t>(kPerThread));
  }
}

TEST_F(WalTest, CountersReadableWhileWritersAppend) {
  // Regression (TSan): records_written()/bytes_logged() are polled by
  // monitors and the crash fuzzer while write observers append under the
  // log mutex. The counters were plain uint64_t once — a data race even
  // though the torn reads were "only" telemetry. Now atomics; this test
  // makes the racing reader explicit so TSan guards the fix.
  constexpr int kThreads = 2;
  constexpr int kPerThread = 200;
  Wal wal(Path("wal"));
  ASSERT_TRUE(wal.Open(true).ok());
  std::atomic<bool> done{false};
  std::thread monitor([&] {
    uint64_t last_records = 0;
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t r = wal.records_written();
      EXPECT_GE(r, last_records);  // monotone while the log stays open
      EXPECT_GE(wal.bytes_logged(), 0u);
      last_records = r;
    }
  });
  {
    TaskPool pool(kThreads);
    TaskGroup group(&pool);
    for (int t = 0; t < kThreads; ++t) {
      group.Run([&wal, t] {
        for (int i = 0; i < kPerThread; ++i) {
          wal.LogInsert(0, 1, static_cast<RowId>(t * kPerThread + i),
                        R(i, "r", 1.0));
        }
      });
    }
    group.Wait();
  }
  done.store(true, std::memory_order_release);
  monitor.join();
  EXPECT_EQ(wal.records_written(), kThreads * kPerThread);
  (void)wal.Close();  // test tempdir teardown discards the file anyway
}

TEST_F(WalTest, ReplayMissingFileIsNotFound) {
  const Status s = Wal::Replay(Path("nonexistent"), [](const WalRecord&) {});
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(WalTest, RecoverAppliesOnlyCommittedVersions) {
  {
    Wal wal(Path("wal"));
    ASSERT_TRUE(wal.Open(true).ok());
    wal.LogInsert(0, 1, 0, R(1, "committed", 1));
    wal.LogCommit(1);
    wal.LogInsert(0, 2, 1, R(2, "uncommitted", 2));
    // No commit record for version 2 (crash mid-batch).
    ASSERT_TRUE(wal.Flush().ok());
  }
  Catalog cat;
  cat.CreateTable("t", S());
  ASSERT_TRUE(Recover(&cat, "", Path("wal")).ok());
  Table* t = cat.MustGetTable("t");
  EXPECT_EQ(t->VisibleCount(1), 1u);
  EXPECT_EQ(t->PhysicalSize(), 1u);  // the uncommitted insert was dropped
  EXPECT_EQ(cat.snapshots().ReadSnapshot(), 1u);
}

TEST_F(WalTest, RecoverReplaysUpdateChains) {
  {
    Wal wal(Path("wal"));
    ASSERT_TRUE(wal.Open(true).ok());
    wal.LogInsert(0, 1, 0, R(1, "v1", 1));
    wal.LogCommit(1);
    wal.LogUpdate(0, 2, 0, R(1, "v2", 2));
    wal.LogCommit(2);
    wal.LogDelete(0, 3, 1);  // deletes the updated version (row id 1)
    wal.LogCommit(3);
    ASSERT_TRUE(wal.Flush().ok());
  }
  Catalog cat;
  cat.CreateTable("t", S());
  ASSERT_TRUE(Recover(&cat, "", Path("wal")).ok());
  Table* t = cat.MustGetTable("t");
  EXPECT_EQ(t->VisibleCount(1), 1u);
  EXPECT_EQ(t->VisibleCount(2), 1u);
  EXPECT_EQ(t->VisibleCount(3), 0u);
  size_t n2 = 0;
  t->ScanVisible(2, [&](RowId, const Tuple& row) {
    EXPECT_EQ(row[1].AsString(), "v2");
    ++n2;
    return true;
  });
  EXPECT_EQ(n2, 1u);
  EXPECT_EQ(cat.snapshots().ReadSnapshot(), 3u);
}

TEST_F(WalTest, CheckpointRoundTrip) {
  Catalog cat;
  Table* t = cat.CreateTable("t", S());
  t->Insert(R(1, "a", 1), 1);
  const RowId r = t->Insert(R(2, "b", 2), 1);
  t->UpdateRow(r, R(2, "b2", 3), 2);
  cat.snapshots().Reset(2);
  ASSERT_TRUE(WriteCheckpoint(cat, Path("ckpt")).ok());

  Catalog fresh;
  fresh.CreateTable("t", S());
  ASSERT_TRUE(LoadCheckpoint(&fresh, Path("ckpt")).ok());
  Table* ft = fresh.MustGetTable("t");
  EXPECT_EQ(ft->PhysicalSize(), 3u);
  EXPECT_EQ(ft->VisibleCount(1), 2u);
  EXPECT_EQ(ft->VisibleCount(2), 2u);
  EXPECT_EQ(fresh.snapshots().ReadSnapshot(), 2u);
  size_t hits = 0;
  ft->ScanVisible(2, [&](RowId, const Tuple& row) {
    if (row[0].AsInt() == 2) {
      EXPECT_EQ(row[1].AsString(), "b2");
      ++hits;
    }
    return true;
  });
  EXPECT_EQ(hits, 1u);
}

TEST_F(WalTest, RecoverFromCheckpointPlusTail) {
  // Build state: checkpoint after version 1, WAL tail for versions 2..3.
  Catalog cat;
  Table* t = cat.CreateTable("t", S());
  t->Insert(R(1, "base", 1), 1);
  cat.snapshots().Reset(1);
  ASSERT_TRUE(WriteCheckpoint(cat, Path("ckpt")).ok());
  {
    Wal wal(Path("wal"));
    ASSERT_TRUE(wal.Open(true).ok());
    // Version 1 records would be in the checkpoint; replay must skip them.
    wal.LogInsert(0, 1, 0, R(1, "base", 1));
    wal.LogCommit(1);
    wal.LogInsert(0, 2, 1, R(2, "tail", 2));
    wal.LogCommit(2);
    wal.LogUpdate(0, 3, 0, R(1, "patched", 9));
    wal.LogCommit(3);
    ASSERT_TRUE(wal.Flush().ok());
  }
  Catalog fresh;
  fresh.CreateTable("t", S());
  ASSERT_TRUE(Recover(&fresh, Path("ckpt"), Path("wal")).ok());
  Table* ft = fresh.MustGetTable("t");
  EXPECT_EQ(ft->VisibleCount(3), 2u);
  EXPECT_EQ(fresh.snapshots().ReadSnapshot(), 3u);
  bool saw_patched = false;
  ft->ScanVisible(3, [&](RowId, const Tuple& row) {
    if (row[1].AsString() == "patched") saw_patched = true;
    return true;
  });
  EXPECT_TRUE(saw_patched);
}

TEST_F(WalTest, TornTailIsIgnored) {
  {
    Wal wal(Path("wal"));
    ASSERT_TRUE(wal.Open(true).ok());
    wal.LogInsert(0, 1, 0, R(1, "good", 1));
    wal.LogCommit(1);
    ASSERT_TRUE(wal.Flush().ok());
  }
  // Append garbage simulating a torn write.
  {
    std::FILE* f = std::fopen(Path("wal").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = {0x01, 0x02};
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::Replay(Path("wal"), [&](const WalRecord& r) {
                records.push_back(r);
              }).ok());
  EXPECT_EQ(records.size(), 2u);  // the garbage tail is dropped
}

TEST_F(WalTest, RecoverWithoutAnyFilesIsOk) {
  Catalog cat;
  cat.CreateTable("t", S());
  EXPECT_TRUE(Recover(&cat, Path("no_ckpt"), Path("no_wal")).ok());
  EXPECT_EQ(cat.snapshots().ReadSnapshot(), 0u);
}

TEST_F(WalTest, EmptyLogRecoversToEmptyState) {
  {
    Wal wal(Path("wal"));
    ASSERT_TRUE(wal.Open(true).ok());
    ASSERT_TRUE(wal.Sync().ok());  // just the header
  }
  Catalog cat;
  cat.CreateTable("t", S());
  RecoverOptions opts;
  opts.wal_path = Path("wal");
  RecoveryReport report;
  ASSERT_TRUE(Recover(&cat, opts, &report).ok());
  EXPECT_EQ(report.records_replayed, 0u);
  EXPECT_EQ(report.batches_committed, 0u);
  EXPECT_EQ(report.bytes_discarded, 0u);
  EXPECT_EQ(cat.MustGetTable("t")->PhysicalSize(), 0u);
}

TEST_F(WalTest, CorruptChecksumHidesLaterRecords) {
  // A bad CRC mid-file must stop replay THERE: the intact-looking records
  // after it are unreachable (their batch's prefix is gone) and replaying
  // them would resurrect writes whose predecessors were lost.
  uint64_t first_record_end = 0;
  {
    Wal wal(Path("wal"));
    ASSERT_TRUE(wal.Open(true).ok());
    wal.LogInsert(0, 1, 0, R(1, "first", 1));
    first_record_end = wal.bytes_logged();
    wal.LogCommit(1);
    wal.LogInsert(0, 2, 1, R(2, "second", 2));
    wal.LogCommit(2);
    ASSERT_TRUE(wal.Sync().ok());
  }
  FlipByte(Path("wal"), first_record_end - 1);  // payload byte of record 1

  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::Replay(Path("wal"), [&](const WalRecord& r) {
                records.push_back(r);
              }).ok());
  EXPECT_TRUE(records.empty());  // nothing before the corruption

  Catalog cat;
  cat.CreateTable("t", S());
  RecoverOptions opts;
  opts.wal_path = Path("wal");
  RecoveryReport report;
  ASSERT_TRUE(Recover(&cat, opts, &report).ok());
  EXPECT_EQ(report.stop_reason, "bad-crc");
  EXPECT_EQ(report.records_replayed, 0u);
  EXPECT_EQ(report.batches_committed, 0u);
  EXPECT_GT(report.bytes_discarded, 0u);
  EXPECT_EQ(cat.MustGetTable("t")->PhysicalSize(), 0u);  // never wrong data
}

TEST_F(WalTest, FlippedLengthWordCannotDerailReplay) {
  // The CRC covers the length word, so framing damage is caught as a
  // checksum mismatch instead of sending the reader to a bogus offset.
  {
    Wal wal(Path("wal"));
    ASSERT_TRUE(wal.Open(true).ok());
    wal.LogInsert(0, 1, 0, R(1, "a", 1));
    wal.LogCommit(1);
    ASSERT_TRUE(wal.Sync().ok());
  }
  FlipByte(Path("wal"), 8);  // first byte of the first record's length word
  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::Replay(Path("wal"), [&](const WalRecord& r) {
                records.push_back(r);
              }).ok());
  EXPECT_TRUE(records.empty());
}

TEST_F(WalTest, CorruptHeaderIsHardError) {
  // A damaged tail is a crash; a damaged HEADER is the wrong file (or an
  // overwritten one) — silently treating it as empty would discard a log.
  {
    Wal wal(Path("wal"));
    ASSERT_TRUE(wal.Open(true).ok());
    wal.LogCommit(1);
    ASSERT_TRUE(wal.Sync().ok());
  }
  FlipByte(Path("wal"), 0);
  const Status s = Wal::Replay(Path("wal"), [](const WalRecord&) {});
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  Catalog cat;
  cat.CreateTable("t", S());
  EXPECT_EQ(Recover(&cat, "", Path("wal")).code(), StatusCode::kIoError);
}

TEST_F(WalTest, UncommittedTailIsTruncatedByRecover) {
  {
    Wal wal(Path("wal"));
    ASSERT_TRUE(wal.Open(true).ok());
    wal.LogInsert(0, 1, 0, R(1, "committed", 1));
    wal.LogCommit(1);
    wal.LogInsert(0, 2, 1, R(2, "unsealed", 2));  // batch 2 never commits
    ASSERT_TRUE(wal.Sync().ok());
  }
  Catalog cat;
  cat.CreateTable("t", S());
  RecoverOptions opts;
  opts.wal_path = Path("wal");
  RecoveryReport report;
  ASSERT_TRUE(Recover(&cat, opts, &report).ok());
  EXPECT_EQ(report.batches_committed, 1u);
  EXPECT_GT(report.bytes_discarded, 0u);
  // The tail is physically gone: a second recovery finds a clean log.
  Catalog cat2;
  cat2.CreateTable("t", S());
  RecoveryReport report2;
  ASSERT_TRUE(Recover(&cat2, opts, &report2).ok());
  EXPECT_EQ(report2.bytes_discarded, 0u);
  EXPECT_EQ(report2.stop_reason, "eof");
  EXPECT_EQ(cat2.MustGetTable("t")->PhysicalSize(), 1u);
}

TEST_F(WalTest, BytesLoggedMatchesFileSizeAfterSync) {
  Wal wal(Path("wal"));
  ASSERT_TRUE(wal.Open(true).ok());
  wal.LogInsert(0, 1, 0, R(1, "a", 1));
  wal.LogCommit(1);
  ASSERT_TRUE(wal.Sync().ok());
  EXPECT_EQ(wal.bytes_logged(), std::filesystem::file_size(Path("wal")));
  ASSERT_TRUE(wal.Close().ok());
}

TEST_F(WalTest, ReopenAppendPreservesHistory) {
  {
    Wal wal(Path("wal"));
    ASSERT_TRUE(wal.Open(true).ok());
    wal.LogInsert(0, 1, 0, R(1, "first", 1));
    wal.LogCommit(1);
    ASSERT_TRUE(wal.Close().ok());
  }
  {
    Wal wal(Path("wal"));
    ASSERT_TRUE(wal.Open(false).ok());  // append; header must validate
    wal.LogInsert(0, 2, 1, R(2, "second", 2));
    wal.LogCommit(2);
    ASSERT_TRUE(wal.Close().ok());
  }
  size_t records = 0;
  ASSERT_TRUE(Wal::Replay(Path("wal"), [&](const WalRecord&) {
                ++records;
              }).ok());
  EXPECT_EQ(records, 4u);
  Catalog cat;
  cat.CreateTable("t", S());
  ASSERT_TRUE(Recover(&cat, "", Path("wal")).ok());
  EXPECT_EQ(cat.MustGetTable("t")->VisibleCount(2), 2u);
  EXPECT_EQ(cat.snapshots().ReadSnapshot(), 2u);
}

}  // namespace
}  // namespace shareddb
