// Tests for logical plans and the two-step merge (Figure 3 / §3.2):
// fingerprint-driven operator sharing, per-statement configs, schemas.

#include <gtest/gtest.h>

#include "core/plan_builder.h"

namespace shareddb {
namespace {

using logical::LogicalPtr;

class PlanFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    users_ = catalog_.CreateTable(
        "users", Schema::Make({{"user_id", ValueType::kInt},
                               {"username", ValueType::kString},
                               {"country", ValueType::kInt},
                               {"account", ValueType::kInt}}));
    orders_ = catalog_.CreateTable(
        "orders", Schema::Make({{"order_id", ValueType::kInt},
                                {"user_id", ValueType::kInt},
                                {"item_id", ValueType::kInt},
                                {"status", ValueType::kString},
                                {"date", ValueType::kInt}}));
    items_ = catalog_.CreateTable(
        "items", Schema::Make({{"item_id", ValueType::kInt},
                               {"category", ValueType::kInt},
                               {"price", ValueType::kInt},
                               {"available", ValueType::kInt}}));
    users_->CreateIndex("users_id", "user_id");
    items_->CreateIndex("items_id", "item_id");
  }

  Catalog catalog_;
  Table* users_;
  Table* orders_;
  Table* items_;
};

TEST_F(PlanFixture, FingerprintsShareAndDistinguish) {
  auto s1 = logical::Scan("users");
  auto s2 = logical::Scan("users");
  auto s3 = logical::Scan("orders");
  EXPECT_EQ(logical::Fingerprint(s1), logical::Fingerprint(s2));
  EXPECT_NE(logical::Fingerprint(s1), logical::Fingerprint(s3));
  // Slots fork otherwise-identical subtrees.
  auto forked = logical::Scan("users", nullptr, /*slot=*/1);
  EXPECT_NE(logical::Fingerprint(s1), logical::Fingerprint(forked));
  // Join fingerprints include method, keys and children.
  auto j1 = logical::HashJoin(s1, s3, "user_id", "user_id");
  auto j2 = logical::HashJoin(logical::Scan("users"), logical::Scan("orders"),
                              "user_id", "user_id");
  auto j3 = logical::QidJoin(logical::Scan("users"), logical::Scan("orders"),
                             "user_id", "user_id");
  EXPECT_EQ(logical::Fingerprint(j1), logical::Fingerprint(j2));
  EXPECT_NE(logical::Fingerprint(j1), logical::Fingerprint(j3));
}

TEST_F(PlanFixture, ComputeSchemaJoin) {
  auto j = logical::HashJoin(logical::Scan("users"), logical::Scan("orders"),
                             "user_id", "user_id", nullptr, "u", "o");
  const SchemaPtr s = logical::ComputeSchema(j, catalog_);
  EXPECT_EQ(s->num_columns(), 9u);
  EXPECT_EQ(s->column(0).name, "u.user_id");
  EXPECT_EQ(s->column(4).name, "o.order_id");
}

TEST_F(PlanFixture, ComputeSchemaGroupBy) {
  auto g = logical::GroupBy(logical::Scan("users"), {"country"},
                            {{AggSpec{AggFunc::kSum, -1, "total"}, "account"},
                             {AggSpec{AggFunc::kCount, -1, "cnt"}, ""}});
  const SchemaPtr s = logical::ComputeSchema(g, catalog_);
  ASSERT_EQ(s->num_columns(), 3u);
  EXPECT_EQ(s->column(0).name, "country");
  EXPECT_EQ(s->column(1).name, "total");
  EXPECT_EQ(s->column(2).type, ValueType::kInt);  // COUNT is integral
}

// Figure 2's global plan: five statements sharing scans, joins, and a sort.
TEST_F(PlanFixture, Figure2PlanShares) {
  GlobalPlanBuilder builder(&catalog_);

  const SchemaPtr users_s = users_->schema();
  const SchemaPtr orders_s = orders_->schema();
  const SchemaPtr items_s = items_->schema();

  // Q1: SELECT country, SUM(user_id) FROM users GROUP BY country.
  builder.AddQuery(
      "Q1", logical::GroupBy(logical::Scan("users"), {"country"},
                             {{AggSpec{AggFunc::kSum, -1, "sum_uid"}, "user_id"}}));

  // Q2: users ⋈ orders WHERE username = ? AND status = 'OK'.
  auto uo = [&] {
    return logical::HashJoin(
        logical::Scan("users", Expr::Eq(Expr::Column(*users_s, "username"),
                                        Expr::Param(0))),
        logical::Scan("orders", Expr::Eq(Expr::Column(*orders_s, "status"),
                                         Expr::Literal(Value::Str("OK")))),
        "user_id", "user_id", nullptr, "u", "o");
  };
  builder.AddQuery("Q2", uo());
  const size_t nodes_after_q2 = builder.num_nodes();

  // Q3: users ⋈ orders ⋈ items WHERE available < ?.
  auto uo3 = logical::HashJoin(
      logical::Scan("users", Expr::Eq(Expr::Column(*users_s, "username"),
                                      Expr::Param(0))),
      logical::Scan("orders", Expr::Eq(Expr::Column(*orders_s, "status"),
                                       Expr::Literal(Value::Str("OK")))),
      "user_id", "user_id", nullptr, "u", "o");
  builder.AddQuery(
      "Q3",
      logical::HashJoin(uo3,
                        logical::Scan("items", Expr::Lt(Expr::Column(*items_s,
                                                                     "available"),
                                                        Expr::Param(1))),
                        "o.item_id", "item_id", nullptr, "", "i"));
  // Q3 reuses the whole users⋈orders subtree: only two new nodes
  // (items scan is shared with nothing yet, plus the second join).
  EXPECT_EQ(builder.num_nodes(), nodes_after_q2 + 2);

  // Q4: orders ⋈ items WHERE date > ? ORDER BY price.
  auto oi = logical::HashJoin(
      logical::Scan("orders", Expr::Gt(Expr::Column(*orders_s, "date"),
                                       Expr::Param(0))),
      logical::Scan("items"), "item_id", "item_id", nullptr, "o", "i");
  builder.AddQuery("Q4", logical::Sort(oi, {{"i.price", true}}));

  // Q5: items WHERE category = ? ORDER BY price (own sort node: different
  // input schema than Q4's sort — SharedDB shares only type-compatible ops).
  builder.AddQuery(
      "Q5", logical::Sort(logical::Scan("items", Expr::Eq(Expr::Column(*items_s,
                                                                       "category"),
                                                          Expr::Param(0))),
                          {{"price", true}}));

  auto plan = builder.Build();
  // Sharing happened: 5 statements, 3 scans shared among them.
  // Nodes: scan(users), scan(orders), scan(items), gb, hj(u,o), hj(uo,i),
  //        hj(o,i) [different: orders scanned fresh? no — same orders scan
  //        shared], sort(oi), sort(items).
  EXPECT_EQ(plan->num_statements(), 5u);
  // Count scan nodes: must be exactly 3 (one per table).
  size_t scans = 0;
  for (size_t i = 0; i < plan->num_nodes(); ++i) {
    if (std::string(plan->node(i).op->kind_name()) == "ClockScan") ++scans;
  }
  EXPECT_EQ(scans, 3u);
  // Explain renders every node.
  const std::string explain = plan->Explain();
  EXPECT_NE(explain.find("HashJoin"), std::string::npos);
  EXPECT_NE(explain.find("GroupBy"), std::string::npos);
}

TEST_F(PlanFixture, SharedJoinAcrossStatementsHasOneNode) {
  GlobalPlanBuilder builder(&catalog_);
  auto make_join = [&] {
    return logical::HashJoin(logical::Scan("users"), logical::Scan("orders"),
                             "user_id", "user_id");
  };
  builder.AddQuery("A", make_join());
  const size_t n1 = builder.num_nodes();
  builder.AddQuery("B", make_join());
  EXPECT_EQ(builder.num_nodes(), n1);  // fully shared
  auto plan = builder.Build();
  const StatementDef* a = plan->FindStatement("A");
  const StatementDef* b = plan->FindStatement("B");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->root, b->root);
}

TEST_F(PlanFixture, UpdateStatementsCreateUpdateNodes) {
  GlobalPlanBuilder builder(&catalog_);
  builder.AddInsert("ins_user", "users",
                    {Expr::Param(0), Expr::Param(1), Expr::Param(2), Expr::Param(3)});
  builder.AddUpdate("upd_user", "users",
                    {{"account", Expr::Param(1)}},
                    Expr::Eq(Expr::Column(0), Expr::Param(0)));
  builder.AddDelete("del_user", "users", Expr::Eq(Expr::Column(0), Expr::Param(0)));
  auto plan = builder.Build();
  EXPECT_EQ(plan->num_statements(), 3u);
  EXPECT_GE(plan->num_nodes(), 1u);
  EXPECT_GE(plan->UpdateNodeForTable("users"), 0);
  EXPECT_EQ(plan->UpdateNodeForTable("items"), -1);
  const StatementDef* ins = plan->FindStatement("ins_user");
  ASSERT_NE(ins, nullptr);
  EXPECT_FALSE(ins->is_query);
  EXPECT_EQ(ins->update.kind, UpdateKind::kInsert);
}

TEST_F(PlanFixture, QueriesReuseUpdateNodeScan) {
  GlobalPlanBuilder builder(&catalog_);
  builder.AddQuery("q", logical::Scan("users"));
  const size_t n = builder.num_nodes();
  builder.AddInsert("i", "users",
                    {Expr::Param(0), Expr::Param(1), Expr::Param(2), Expr::Param(3)});
  EXPECT_EQ(builder.num_nodes(), n);  // insert reuses the existing scan node
}

TEST_F(PlanFixture, IndexJoinAndProbeNodes) {
  GlobalPlanBuilder builder(&catalog_);
  auto probe = logical::Probe("users", "users_id",
                              Expr::Eq(Expr::Column(0), Expr::Param(0)));
  auto ij = logical::IndexJoin(logical::Scan("orders"), "items", "items_id",
                               "item_id", nullptr, "o", "i");
  builder.AddQuery("probe_user", probe);
  builder.AddQuery("orders_items", ij);
  auto plan = builder.Build();
  bool has_probe = false, has_inl = false;
  for (size_t i = 0; i < plan->num_nodes(); ++i) {
    const std::string k = plan->node(i).op->kind_name();
    has_probe |= (k == "IndexProbe");
    has_inl |= (k == "IndexNLJoin");
  }
  EXPECT_TRUE(has_probe);
  EXPECT_TRUE(has_inl);
}

TEST_F(PlanFixture, SplitJoinConjunctsPushdown) {
  // Predicate over (users ++ orders): username = ? (left), status = 'OK'
  // (right), user ids equal (mixed).
  const size_t uw = users_->schema()->num_columns();
  auto pred = Expr::And(
      {Expr::Eq(Expr::Column(1), Expr::Param(0)),
       Expr::Eq(Expr::Column(uw + 3), Expr::Literal(Value::Str("OK"))),
       Expr::Eq(Expr::Column(0), Expr::Column(uw + 1))});
  std::vector<ExprPtr> left, right, mixed;
  logical::SplitJoinConjuncts(pred, uw, &left, &right, &mixed);
  EXPECT_EQ(left.size(), 1u);
  EXPECT_EQ(right.size(), 1u);
  EXPECT_EQ(mixed.size(), 1u);
  // The right-only conjunct was remapped into the right child's space.
  const Tuple order_row{Value::Int(1), Value::Int(2), Value::Int(3),
                        Value::Str("OK"), Value::Int(5)};
  EXPECT_TRUE(right[0]->EvalBool(order_row, {}));
}

}  // namespace
}  // namespace shareddb
