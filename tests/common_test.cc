// Tests for the common substrate: Value, QueryIdSet, Schema, DQBatch, Rng.

#include <gtest/gtest.h>

#include <set>

#include "common/batch.h"
#include "common/query_id_set.h"
#include "common/rng.h"
#include "common/schema.h"
#include "common/string_util.h"
#include "common/tuple.h"
#include "common/value.h"

namespace shareddb {
namespace {

// --- Value -------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Str("abc").AsString(), "abc");
  EXPECT_EQ(Value::Int(7).type(), ValueType::kInt);
  EXPECT_EQ(Value::Str("x").type(), ValueType::kString);
}

TEST(ValueTest, IntComparison) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Int(5).Compare(Value::Int(-5)), 0);
  EXPECT_EQ(Value::Int(3).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, CrossNumericComparison) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Double(4.5).Compare(Value::Int(4)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  EXPECT_EQ(Value::Str("").Compare(Value::Str("")), 0);
  // Numerics order before strings in the total order.
  EXPECT_LT(Value::Int(999).Compare(Value::Str("0")), 0);
}

TEST(ValueTest, NullOrdersFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_LT(Value::Null().Compare(Value::Str("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, HashEqualForNumericEqual) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_NE(Value::Int(7).Hash(), Value::Int(8).Hash());
}

TEST(ValueTest, HashStringStability) {
  EXPECT_EQ(Value::Str("hello").Hash(), Value::Str("hello").Hash());
  EXPECT_NE(Value::Str("hello").Hash(), Value::Str("hellp").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(5).ToString(), "5");
  EXPECT_EQ(Value::Str("x").ToString(), "'x'");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
}

TEST(ValueTest, OperatorOverloads) {
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
  EXPECT_TRUE(Value::Int(2) == Value::Double(2.0));
  EXPECT_TRUE(Value::Str("b") >= Value::Str("a"));
  EXPECT_TRUE(Value::Int(1) != Value::Int(3));
}

// --- QueryIdSet ----------------------------------------------------------------

TEST(QueryIdSetTest, EmptyAndSingleton) {
  QueryIdSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  QueryIdSet one(7);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_TRUE(one.Contains(7));
  EXPECT_FALSE(one.Contains(8));
}

TEST(QueryIdSetTest, InitializerListDedupesAndSorts) {
  QueryIdSet s{5, 1, 3, 5, 1};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.ids(), (std::vector<QueryId>{1, 3, 5}));
}

TEST(QueryIdSetTest, InsertKeepsOrder) {
  QueryIdSet s;
  s.Insert(5);
  s.Insert(1);
  s.Insert(3);
  s.Insert(3);
  EXPECT_EQ(s.ids(), (std::vector<QueryId>{1, 3, 5}));
}

TEST(QueryIdSetTest, IntersectAndUnion) {
  QueryIdSet a{1, 2, 3, 7};
  QueryIdSet b{2, 3, 4};
  EXPECT_EQ(a.Intersect(b).ids(), (std::vector<QueryId>{2, 3}));
  EXPECT_EQ(a.Union(b).ids(), (std::vector<QueryId>{1, 2, 3, 4, 7}));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersect(QueryIdSet{9}).size());
  EXPECT_FALSE(a.Intersects(QueryIdSet{9}));
}

TEST(QueryIdSetTest, IntersectEmpty) {
  QueryIdSet a{1, 2};
  QueryIdSet empty;
  EXPECT_TRUE(a.Intersect(empty).empty());
  EXPECT_FALSE(a.Intersects(empty));
}

// Property test: set algebra agrees with std::set on random inputs.
TEST(QueryIdSetTest, PropertyMatchesStdSet) {
  Rng rng(42);
  for (int round = 0; round < 200; ++round) {
    std::set<QueryId> ra, rb;
    QueryIdSet a, b;
    const int na = static_cast<int>(rng.Uniform(0, 20));
    const int nb = static_cast<int>(rng.Uniform(0, 20));
    for (int i = 0; i < na; ++i) {
      const QueryId id = static_cast<QueryId>(rng.Uniform(0, 30));
      ra.insert(id);
      a.Insert(id);
    }
    for (int i = 0; i < nb; ++i) {
      const QueryId id = static_cast<QueryId>(rng.Uniform(0, 30));
      rb.insert(id);
      b.Insert(id);
    }
    std::set<QueryId> rinter, runion;
    for (const QueryId x : ra) {
      if (rb.count(x)) rinter.insert(x);
    }
    runion = ra;
    runion.insert(rb.begin(), rb.end());

    const QueryIdSet inter = a.Intersect(b);
    const QueryIdSet uni = a.Union(b);
    EXPECT_EQ(std::vector<QueryId>(rinter.begin(), rinter.end()), inter.ids());
    EXPECT_EQ(std::vector<QueryId>(runion.begin(), runion.end()), uni.ids());
    EXPECT_EQ(!rinter.empty(), a.Intersects(b));
    for (QueryId probe = 0; probe < 30; ++probe) {
      EXPECT_EQ(ra.count(probe) > 0, a.Contains(probe));
    }
  }
}

// --- QueryIdSet representation (SBO / refcounted heap / interning) -------------

TEST(QueryIdSetTest, SmallSetsStayInline) {
  QueryIdSet s;
  for (QueryId id = 0; id < QueryIdSet::kInlineCapacity; ++id) s.Insert(id * 2);
  EXPECT_TRUE(s.is_inline());
  EXPECT_EQ(s.size(), QueryIdSet::kInlineCapacity);
}

TEST(QueryIdSetTest, InlineToHeapSpill) {
  QueryIdSet s;
  const size_t n = QueryIdSet::kInlineCapacity + 3;
  for (QueryId id = 0; id < n; ++id) {
    s.Insert(id * 3);
    EXPECT_TRUE(s.Contains(id * 3));
  }
  EXPECT_FALSE(s.is_inline());
  EXPECT_EQ(s.size(), n);
  std::vector<QueryId> expect;
  for (QueryId id = 0; id < n; ++id) expect.push_back(id * 3);
  EXPECT_EQ(s.ids(), expect);
}

TEST(QueryIdSetTest, CopiesShareHeapStorage) {
  std::vector<QueryId> big;
  for (QueryId id = 0; id < 20; ++id) big.push_back(id);
  const QueryIdSet a = QueryIdSet::FromSorted(big);
  const QueryIdSet b = a;  // refcount bump, no allocation
  EXPECT_TRUE(a.SharesStorageWith(b));
  EXPECT_EQ(a, b);
  // Mutation copies on write: the original is untouched.
  QueryIdSet c = a;
  c.Insert(100);
  EXPECT_FALSE(c.SharesStorageWith(a));
  EXPECT_EQ(a.size(), 20u);
  EXPECT_EQ(c.size(), 21u);
  EXPECT_FALSE(a.Contains(100));
  EXPECT_TRUE(c.Contains(100));
}

TEST(QueryIdSetTest, SharedOperandAlgebraFastPaths) {
  std::vector<QueryId> big;
  for (QueryId id = 0; id < 32; ++id) big.push_back(id);
  const QueryIdSet a = QueryIdSet::FromSorted(big);
  const QueryIdSet b = a;
  EXPECT_EQ(a.Intersect(b), a);
  EXPECT_EQ(a.Union(b), a);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(a.Intersect(b).SharesStorageWith(a));
}

TEST(QueryIdSetTest, GallopPathIntersect) {
  // Large side >= kGallopRatio * (small + 1) forces the galloping path.
  std::vector<QueryId> large;
  for (QueryId id = 0; id < 1024; ++id) large.push_back(id * 2);
  const QueryIdSet big = QueryIdSet::FromSorted(large);
  const QueryIdSet small{0, 2, 5, 2046, 4000};
  const QueryIdSet inter = small.Intersect(big);
  EXPECT_EQ(inter.ids(), (std::vector<QueryId>{0, 2, 2046}));
  // Symmetric call takes the same path (small side drives).
  EXPECT_EQ(big.Intersect(small), inter);
}

TEST(QueryIdSetTest, MergeCostConsistency) {
  // Zero-size operands charge the constant probe.
  EXPECT_EQ(QueryIdSet::MergeCost(0, 100), 1u);
  EXPECT_EQ(QueryIdSet::MergeCost(100, 0), 1u);
  // Balanced operands charge the merge (a + b), symmetrically.
  EXPECT_EQ(QueryIdSet::MergeCost(8, 10), 18u);
  EXPECT_EQ(QueryIdSet::MergeCost(10, 8), 18u);
  // Skewed operands charge the gallop: small * (log(ratio) + 1) < a + b.
  const uint64_t skewed = QueryIdSet::MergeCost(4, 4096);
  EXPECT_LT(skewed, 4u + 4096u);
  EXPECT_EQ(skewed, QueryIdSet::MergeCost(4096, 4));
  // The gallop threshold matches Intersect's.
  const size_t small_n = 4;
  const size_t at_threshold = QueryIdSet::kGallopRatio * (small_n + 1);
  EXPECT_LT(QueryIdSet::MergeCost(small_n, at_threshold),
            static_cast<uint64_t>(small_n + at_threshold));
}

TEST(QueryIdSetTest, HashValueStableAcrossRepresentation) {
  // Same contents, different construction paths: equal hashes.
  QueryIdSet incremental;
  std::vector<QueryId> bulk;
  for (QueryId id = 0; id < 12; ++id) {
    incremental.Insert(id * 5);
    bulk.push_back(id * 5);
  }
  const QueryIdSet direct = QueryIdSet::FromSorted(bulk);
  EXPECT_EQ(incremental.HashValue(), direct.HashValue());
  // Cached hash is invalidated by in-place mutation.
  QueryIdSet mutated = direct;
  (void)mutated.HashValue();
  mutated.Insert(1);
  EXPECT_NE(mutated.HashValue(), direct.HashValue());
}

TEST(QidInternPoolTest, DedupesEqualSets) {
  std::vector<QueryId> ids;
  for (QueryId id = 0; id < 16; ++id) ids.push_back(id);
  const QueryIdSet a = QueryIdSet::FromSorted(ids);
  const QueryIdSet b = QueryIdSet::FromSorted(ids);  // equal, separate alloc
  EXPECT_FALSE(a.SharesStorageWith(b));

  QidInternPool pool;
  bool known = false;
  const QueryIdSet ca = pool.Intern(a, &known);
  EXPECT_FALSE(known);
  const QueryIdSet cb = pool.Intern(b, &known);
  EXPECT_TRUE(known);
  EXPECT_TRUE(ca.SharesStorageWith(cb));
  EXPECT_EQ(pool.size(), 1u);

  pool.Clear();
  EXPECT_EQ(pool.size(), 0u);
  const QueryIdSet cc = pool.Intern(b, &known);
  EXPECT_FALSE(known);
  EXPECT_EQ(cc, a);
  EXPECT_EQ(pool.size(), 1u);
}

// --- BatchRef ------------------------------------------------------------------

TEST(BatchRefTest, OwnedTakeMoves) {
  DQBatch b;
  b.Push({Value::Int(1)}, QueryIdSet(0));
  BatchRef ref(std::move(b));
  EXPECT_TRUE(ref.unique());
  DQBatch taken = ref.Take();
  EXPECT_EQ(taken.size(), 1u);
}

TEST(BatchRefTest, SharedTakeCopiesWhileOthersHold) {
  auto sp = std::make_shared<DQBatch>();
  sp->Push({Value::Int(7)}, QueryIdSet(0));
  sp->Push({Value::Int(8)}, QueryIdSet(1));
  BatchRef r1{std::shared_ptr<const DQBatch>(sp)};
  BatchRef r2{std::shared_ptr<const DQBatch>(sp)};
  sp.reset();
  EXPECT_FALSE(r1.unique());
  DQBatch first = r1.Take();  // copy: r2 still holds the batch
  EXPECT_EQ(first.size(), 2u);
  EXPECT_EQ(r2.view().size(), 2u);
  EXPECT_TRUE(r2.unique());
  DQBatch second = r2.Take();  // move: last owner
  EXPECT_EQ(second.size(), 2u);
}

TEST(QueryIdBitmapTest, Basics) {
  QueryIdBitmap bm(200);
  bm.Insert(0);
  bm.Insert(63);
  bm.Insert(64);
  bm.Insert(199);
  EXPECT_TRUE(bm.Contains(0));
  EXPECT_TRUE(bm.Contains(63));
  EXPECT_TRUE(bm.Contains(64));
  EXPECT_TRUE(bm.Contains(199));
  EXPECT_FALSE(bm.Contains(100));
  EXPECT_EQ(bm.PopCount(), 4u);

  QueryIdBitmap other(200);
  other.Insert(63);
  other.Insert(100);
  bm.IntersectWith(other);
  EXPECT_TRUE(bm.Contains(63));
  EXPECT_FALSE(bm.Contains(0));
  EXPECT_TRUE(bm.Any());
  EXPECT_EQ(bm.PopCount(), 1u);
}

// --- Schema --------------------------------------------------------------------

TEST(SchemaTest, LookupAndProject) {
  auto s = Schema::Make({{"id", ValueType::kInt},
                         {"name", ValueType::kString},
                         {"price", ValueType::kDouble}});
  EXPECT_EQ(s->num_columns(), 3u);
  EXPECT_EQ(s->ColumnIndex("name"), 1u);
  EXPECT_EQ(s->FindColumn("missing"), -1);
  auto p = s->Project({2, 0});
  EXPECT_EQ(p->num_columns(), 2u);
  EXPECT_EQ(p->column(0).name, "price");
  EXPECT_EQ(p->column(1).name, "id");
}

TEST(SchemaTest, JoinWithPrefixes) {
  auto a = Schema::Make({{"id", ValueType::kInt}});
  auto b = Schema::Make({{"id", ValueType::kInt}, {"x", ValueType::kDouble}});
  auto j = Schema::Join(*a, *b, "l", "r");
  EXPECT_EQ(j->num_columns(), 3u);
  EXPECT_EQ(j->column(0).name, "l.id");
  EXPECT_EQ(j->column(1).name, "r.id");
  EXPECT_EQ(j->column(2).name, "r.x");
}

TEST(SchemaTest, Equals) {
  auto a = Schema::Make({{"id", ValueType::kInt}});
  auto b = Schema::Make({{"id", ValueType::kInt}});
  auto c = Schema::Make({{"id", ValueType::kString}});
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
}

// --- Tuple / DQBatch -------------------------------------------------------------

TEST(TupleTest, EqualityAndOrdering) {
  Tuple a{Value::Int(1), Value::Str("x")};
  Tuple b{Value::Int(1), Value::Str("x")};
  Tuple c{Value::Int(1), Value::Str("y")};
  EXPECT_TRUE(TuplesEqual(a, b));
  EXPECT_FALSE(TuplesEqual(a, c));
  EXPECT_TRUE(TupleLess(a, c));
  EXPECT_EQ(TupleHash(a), TupleHash(b));
}

TEST(DQBatchTest, CompactRemovesDeadTuples) {
  DQBatch b(Schema::Make({{"v", ValueType::kInt}}));
  b.Push({Value::Int(1)}, QueryIdSet{1});
  b.Push({Value::Int(2)}, QueryIdSet{});
  b.Push({Value::Int(3)}, QueryIdSet{2, 3});
  EXPECT_EQ(b.Compact(), 1u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b.tuples[0][0].AsInt(), 1);
  EXPECT_EQ(b.tuples[1][0].AsInt(), 3);
  b.CheckValid();
}

TEST(DQBatchTest, RowsForAndMembership) {
  DQBatch b(Schema::Make({{"v", ValueType::kInt}}));
  b.Push({Value::Int(1)}, QueryIdSet{1, 2});
  b.Push({Value::Int(2)}, QueryIdSet{2});
  b.Push({Value::Int(3)}, QueryIdSet{1});
  EXPECT_EQ(b.RowsFor(1).size(), 2u);
  EXPECT_EQ(b.RowsFor(2).size(), 2u);
  EXPECT_EQ(b.RowsFor(3).size(), 0u);
  // NF² membership count = what first-normal-form would have materialized.
  EXPECT_EQ(b.MembershipCount(), 4u);
}

TEST(DQBatchTest, AppendConcatenates) {
  auto s = Schema::Make({{"v", ValueType::kInt}});
  DQBatch a(s), b(s);
  a.Push({Value::Int(1)}, QueryIdSet{1});
  b.Push({Value::Int(2)}, QueryIdSet{2});
  a.Append(b);
  EXPECT_EQ(a.size(), 2u);
}

// --- Rng -------------------------------------------------------------------------

TEST(RngTest, DeterministicAndInRange) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = r.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.Exponential(7.0);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 7.0, 0.5);
}

TEST(RngTest, AlphaStringLengths) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) {
    const std::string s = r.AlphaString(3, 8);
    EXPECT_GE(s.size(), 3u);
    EXPECT_LE(s.size(), 8u);
  }
}

// --- string_util -----------------------------------------------------------------

TEST(StringUtilTest, Basics) {
  EXPECT_EQ(ToLowerAscii("AbC9"), "abc9");
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_TRUE(Contains("hello", "ell"));
  EXPECT_EQ(Split("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(JoinStrings({"a", "b"}, "-"), "a-b");
  EXPECT_EQ(StringPrintf("%d-%s", 5, "x"), "5-x");
}

}  // namespace
}  // namespace shareddb
