// Network front door tests: frame codec properties, TCP end-to-end
// equivalence against the in-process Session path (with real batch
// sharing), admission/deadline/shutdown status fidelity over the wire,
// PR 7's accounting identity measured through TCP clients, slow-reader
// overflow, and a seeded garbage-stream fuzz against a live listener.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/rng.h"
#include "core/plan_builder.h"
#include "net/client.h"
#include "net/server.h"
#include "testing_util.h"

namespace shareddb {
namespace {

class NetFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    users_ = catalog_.CreateTable(
        "users", Schema::Make({{"user_id", ValueType::kInt},
                               {"country", ValueType::kInt},
                               {"account", ValueType::kInt}}));
    for (int i = 0; i < 40; ++i) {
      users_->Insert({Value::Int(i), Value::Int(i % 4), Value::Int(i * 10)}, 1);
    }
    catalog_.snapshots().Reset(1);
  }

  std::unique_ptr<GlobalPlan> BuildPlan() {
    GlobalPlanBuilder b(&catalog_);
    const SchemaPtr us = users_->schema();
    b.AddQuery("user_by_id",
               logical::Scan("users", Expr::Eq(Expr::Column(*us, "user_id"),
                                               Expr::Param(0))));
    b.AddQuery("by_country",
               logical::Scan("users", Expr::Eq(Expr::Column(*us, "country"),
                                               Expr::Param(0))));
    b.AddUpdate("credit", "users",
                {{"account", Expr::Add(Expr::Column(2), Expr::Param(1))}},
                Expr::Eq(Expr::Column(0), Expr::Param(0)));
    return b.Build();
  }

  Catalog catalog_;
  Table* users_;
};

// --- frame codec -------------------------------------------------------------

TEST(NetFrame, SealDecodeRoundtrip) {
  const std::string frame =
      net::SealFrame(net::FrameType::kPrepare, 42,
                     net::EncodePrepare({"user_by_id"}));
  net::Frame out;
  size_t consumed = 0;
  ASSERT_EQ(net::DecodeFrame(frame, net::kDefaultMaxPayload, &out, &consumed),
            net::DecodeStatus::kFrame);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(out.type, net::FrameType::kPrepare);
  EXPECT_EQ(out.request_id, 42u);
  net::PrepareMsg m;
  ASSERT_TRUE(net::DecodePrepare(out.body, &m));
  EXPECT_EQ(m.name, "user_by_id");
}

TEST(NetFrame, EveryBitFlipIsDetected) {
  std::string frame = net::SealFrame(net::FrameType::kExecute, 7,
                                     net::EncodeExecute({true, 0, "q", 0,
                                                         {Value::Int(3)}}));
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    std::string damaged = frame;
    damaged[byte] = static_cast<char>(damaged[byte] ^ 0x10);
    net::Frame out;
    size_t consumed = 0;
    const net::DecodeStatus ds =
        net::DecodeFrame(damaged, net::kDefaultMaxPayload, &out, &consumed);
    // A flipped length may claim a longer frame (kNeedMore) or an absurd
    // one (kOversized); any fully-present frame must fail the CRC.
    EXPECT_NE(ds, net::DecodeStatus::kFrame) << "flip at byte " << byte;
  }
}

TEST(NetFrame, HostileLengthRejectedWithoutBuffering) {
  std::string buf;
  buf.append("\xff\xff\xff\xff", 4);  // len = 4 GiB
  buf.append("\0\0\0\0", 4);
  net::Frame out;
  size_t consumed = 0;
  EXPECT_EQ(net::DecodeFrame(buf, net::kDefaultMaxPayload, &out, &consumed),
            net::DecodeStatus::kOversized);
}

TEST(NetFrame, TruncatedFrameNeedsMore) {
  const std::string frame = net::SealFrame(net::FrameType::kGoodbye, 1, "");
  for (size_t n = 0; n < frame.size(); ++n) {
    net::Frame out;
    size_t consumed = 0;
    EXPECT_EQ(net::DecodeFrame(frame.substr(0, n), net::kDefaultMaxPayload,
                               &out, &consumed),
              net::DecodeStatus::kNeedMore);
  }
}

TEST(NetFrame, ResultSplitsIntoRowsContinuations) {
  ResultSet rs;
  rs.schema = Schema::Make({{"v", ValueType::kString}});
  for (int i = 0; i < 300; ++i) {
    rs.rows.push_back({Value::Str(std::string(100, 'a' + (i % 26)))});
  }
  std::vector<std::string> frames;
  // Tiny cap forces continuation frames.
  net::EncodeResultFrames(5, rs, /*ready=*/true, 0, /*max_payload=*/8192,
                          &frames);
  ASSERT_GT(frames.size(), 1u);

  // Reassemble exactly as the client does.
  net::Frame head_frame;
  size_t consumed = 0;
  ASSERT_EQ(net::DecodeFrame(frames[0], net::kDefaultMaxPayload, &head_frame,
                             &consumed),
            net::DecodeStatus::kFrame);
  net::ResultHead head;
  std::vector<Tuple> rows;
  ASSERT_TRUE(net::DecodeResultHead(head_frame.body, &head, &rows));
  EXPECT_EQ(head.total_rows, rs.rows.size());
  for (size_t i = 1; i < frames.size(); ++i) {
    net::Frame f;
    ASSERT_EQ(net::DecodeFrame(frames[i], net::kDefaultMaxPayload, &f,
                               &consumed),
              net::DecodeStatus::kFrame);
    ASSERT_EQ(f.type, net::FrameType::kRows);
    net::RowsMsg m;
    ASSERT_TRUE(net::DecodeRows(f.body, &m));
    EXPECT_EQ(m.done, i + 1 == frames.size());
    for (Tuple& r : m.rows) rows.push_back(std::move(r));
  }
  EXPECT_EQ(Canonical(rows), Canonical(rs.rows));
}

TEST(NetFrame, WideRowsNeverSealOversizedFrames) {
  // Multi-KB rows landing near the budget boundary must be deferred to the
  // next frame, never packed past the cap: a peer answers an oversized
  // frame by closing the connection, so one wide result would break an
  // otherwise healthy client.
  constexpr size_t kCap = 8192;
  ResultSet rs;
  rs.schema = Schema::Make({{"v", ValueType::kString}});
  for (int i = 0; i < 40; ++i) {
    rs.rows.push_back({Value::Str(std::string(3000 + i * 17, 'x'))});
  }
  std::vector<std::string> frames;
  net::EncodeResultFrames(9, rs, /*ready=*/true, 0, kCap, &frames);
  ASSERT_GT(frames.size(), 1u);
  std::vector<Tuple> rows;
  for (size_t i = 0; i < frames.size(); ++i) {
    net::Frame f;
    size_t consumed = 0;
    // Decode under the SAME cap the encoder was given: every sealed frame
    // must fit it.
    ASSERT_EQ(net::DecodeFrame(frames[i], kCap, &f, &consumed),
              net::DecodeStatus::kFrame)
        << "frame " << i << " exceeds the cap it was encoded under";
    if (i == 0) {
      ASSERT_EQ(f.type, net::FrameType::kResult);
      net::ResultHead head;
      ASSERT_TRUE(net::DecodeResultHead(f.body, &head, &rows));
      EXPECT_EQ(head.total_rows, rs.rows.size());
    } else {
      ASSERT_EQ(f.type, net::FrameType::kRows);
      net::RowsMsg m;
      ASSERT_TRUE(net::DecodeRows(f.body, &m));
      for (Tuple& r : m.rows) rows.push_back(std::move(r));
    }
  }
  EXPECT_EQ(Canonical(rows), Canonical(rs.rows));
}

TEST(NetFrame, RowWiderThanCapBecomesTypedError) {
  // A row that cannot fit ANY frame is unrepresentable on the wire; the
  // encoder must answer with a typed ERROR, not an undecodable frame.
  ResultSet rs;
  rs.schema = Schema::Make({{"v", ValueType::kString}});
  rs.rows.push_back({Value::Str(std::string(20000, 'x'))});
  std::vector<std::string> frames;
  net::EncodeResultFrames(3, rs, /*ready=*/true, 0, /*max_payload=*/8192,
                          &frames);
  ASSERT_EQ(frames.size(), 1u);
  net::Frame f;
  size_t consumed = 0;
  ASSERT_EQ(net::DecodeFrame(frames[0], 8192, &f, &consumed),
            net::DecodeStatus::kFrame);
  ASSERT_EQ(f.type, net::FrameType::kError);
  EXPECT_EQ(f.request_id, 3u);
  net::ErrorMsg e;
  ASSERT_TRUE(net::DecodeError(f.body, &e));
  EXPECT_EQ(e.code, StatusCode::kResourceExhausted);
}

// --- end-to-end over TCP -----------------------------------------------------

TEST_F(NetFixture, HandshakePrepareExecute) {
  Engine engine(BuildPlan());
  api::Server server(&engine);
  net::Server net_server(&server);
  ASSERT_TRUE(net_server.Start().ok());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_server.port()).ok());
  EXPECT_FALSE(client.server_banner().empty());

  net::PreparedStatement stmt;
  ASSERT_TRUE(client.Prepare("user_by_id", &stmt).ok());
  EXPECT_TRUE(stmt.valid());
  EXPECT_EQ(stmt.num_params(), 1u);

  const ResultSet over_wire = client.Execute(stmt, {Value::Int(7)});
  ASSERT_TRUE(over_wire.status.ok()) << over_wire.status.ToString();
  EXPECT_GE(over_wire.batches_waited, 1u);

  auto session = server.OpenSession();
  const ResultSet in_process = session->Execute("user_by_id", {Value::Int(7)});
  ExpectResultsEqual(over_wire, in_process, "user_by_id over TCP");

  // Unknown names surface the same NotFound as the in-process path.
  const ResultSet missing = client.Execute("no_such_statement", {});
  EXPECT_EQ(missing.status.code(), StatusCode::kNotFound);

  net::PreparedStatement bad;
  EXPECT_EQ(client.Prepare("no_such_statement", &bad).code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(bad.valid());

  client.Close();
  net_server.Shutdown();
}

TEST_F(NetFixture, UpdatesApplyThroughTheWire) {
  Engine engine(BuildPlan());
  api::Server server(&engine);
  net::Server net_server(&server);
  ASSERT_TRUE(net_server.Start().ok());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_server.port()).ok());
  const ResultSet up =
      client.Execute("credit", {Value::Int(3), Value::Int(500)});
  ASSERT_TRUE(up.status.ok()) << up.status.ToString();
  EXPECT_EQ(up.update_count, 1u);

  const ResultSet after = client.Execute("user_by_id", {Value::Int(3)});
  ASSERT_TRUE(after.status.ok());
  ASSERT_EQ(after.rows.size(), 1u);
  EXPECT_EQ(after.rows[0][2].AsInt(), 3 * 10 + 500);
  net_server.Shutdown();
}

// The tentpole acceptance: >= 8 concurrent TCP connections, each getting
// results identical to the in-process Session path, while the api server's
// occupancy proves the connections actually SHARED batches.
TEST_F(NetFixture, EightConnectionsShareBatchesWithIdenticalResults) {
  Engine engine(BuildPlan());
  api::ServerOptions sopts;
  sopts.min_batch_window = std::chrono::microseconds(1500);
  api::Server server(&engine, sopts);
  net::NetServerOptions nopts;
  nopts.num_workers = 3;
  net::Server net_server(&server, nopts);
  ASSERT_TRUE(net_server.Start().ok());

  // In-process oracle rows for the two read templates, per parameter.
  std::vector<ResultSet> expect_by_id(8), expect_by_country(4);
  {
    auto session = server.OpenSession();
    for (int i = 0; i < 8; ++i) {
      expect_by_id[i] = session->Execute("user_by_id", {Value::Int(i)});
      ASSERT_TRUE(expect_by_id[i].status.ok());
    }
    for (int i = 0; i < 4; ++i) {
      expect_by_country[i] = session->Execute("by_country", {Value::Int(i)});
      ASSERT_TRUE(expect_by_country[i].status.ok());
    }
  }

  constexpr int kClients = 8;
  constexpr int kCallsEach = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      net::Client client;
      if (!client.Connect("127.0.0.1", net_server.port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      net::PreparedStatement by_id;
      if (!client.Prepare("user_by_id", &by_id).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kCallsEach; ++i) {
        const bool prepared = (i % 2) == 0;
        const int arg = (c + i) % (prepared ? 8 : 4);
        const ResultSet rs =
            prepared ? client.Execute(by_id, {Value::Int(arg)})
                     : client.Execute("by_country", {Value::Int(arg)});
        const ResultSet& want =
            prepared ? expect_by_id[arg] : expect_by_country[arg];
        if (!rs.status.ok() || Canonical(rs) != Canonical(want) ||
            rs.batches_waited < 1 ||
            rs.admission_spills != rs.batches_waited - 1) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  server.Pause();  // quiesce so stats include the last heartbeat
  const api::Server::Stats stats = server.stats();
  EXPECT_GT(stats.MeanBatchOccupancy(), 1.0)
      << "TCP clients never shared a batch";
  const net::NetServerStats ns = net_server.stats();
  EXPECT_GE(ns.connections_accepted, static_cast<uint64_t>(kClients));
  EXPECT_EQ(ns.protocol_errors, 0u);
  server.Resume();
  net_server.Shutdown();
}

// --- async over the wire -----------------------------------------------------

TEST_F(NetFixture, AsyncFetchCancelAndDeadline) {
  Engine engine(BuildPlan());
  api::Server server(&engine);
  net::Server net_server(&server);
  ASSERT_TRUE(net_server.Start().ok());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_server.port()).ok());

  // Plain async: ack + FETCH(wait) returns the committed result.
  net::AsyncCall a = client.ExecuteAsync("user_by_id", {Value::Int(4)});
  ASSERT_TRUE(a.valid());
  const ResultSet ra = a.Get();
  ASSERT_TRUE(ra.status.ok()) << ra.status.ToString();
  ASSERT_EQ(ra.rows.size(), 1u);

  // WaitFor caches the result; Get() afterwards costs no extra round trip.
  net::AsyncCall b = client.ExecuteAsync("by_country", {Value::Int(2)});
  ASSERT_TRUE(b.WaitFor(std::chrono::milliseconds(2000)));
  const ResultSet rb = b.Get();
  EXPECT_TRUE(rb.status.ok());
  EXPECT_EQ(rb.rows.size(), 10u);

  // GetWithDeadline with a generous budget returns the real result.
  net::AsyncCall c = client.ExecuteAsync("user_by_id", {Value::Int(5)});
  const ResultSet rc = c.GetWithDeadline(std::chrono::steady_clock::now() +
                                         std::chrono::seconds(2));
  EXPECT_TRUE(rc.status.ok()) << rc.status.ToString();

  // Cancel on a paused driver: the drain carries Aborted, same as
  // api::AsyncResult.
  server.Pause();
  net::AsyncCall d = client.ExecuteAsync("user_by_id", {Value::Int(6)});
  d.Cancel();
  server.Resume();
  const ResultSet rd = d.Get();
  EXPECT_EQ(rd.status.code(), StatusCode::kAborted) << rd.status.ToString();

  // An abandoned handle is cancelled + freed server-side by the destructor.
  { net::AsyncCall e = client.ExecuteAsync("user_by_id", {Value::Int(1)}); }
  // FETCH after abandon must answer NotFound, not a stuck entry.
  net::AsyncCall f = client.ExecuteAsync("user_by_id", {Value::Int(2)});
  const ResultSet rf = f.Get();
  EXPECT_TRUE(rf.status.ok());

  net_server.Shutdown();
}

// --- admission statuses over the wire ----------------------------------------

// A full admission queue must produce kResourceExhausted ERROR frames
// synchronously: the driver is PAUSED here, so the rejections prove the
// inline (no-reaper, no-heartbeat) response path.
TEST_F(NetFixture, FullQueueRejectsSynchronously) {
  Engine engine(BuildPlan());
  api::ServerOptions sopts;
  sopts.max_queue_depth = 2;
  sopts.start_paused = true;
  api::Server server(&engine, sopts);
  net::Server net_server(&server);
  ASSERT_TRUE(net_server.Start().ok());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_server.port()).ok());

  // Fill the queue with async calls (acked immediately, results pending).
  net::AsyncCall a = client.ExecuteAsync("user_by_id", {Value::Int(1)});
  net::AsyncCall b = client.ExecuteAsync("user_by_id", {Value::Int(2)});
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());

  // Driver paused + queue full: the rejection can only be synchronous.
  const auto t0 = std::chrono::steady_clock::now();
  const ResultSet rejected = client.Execute("user_by_id", {Value::Int(3)});
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted)
      << rejected.status.ToString();
  EXPECT_LT(elapsed, std::chrono::seconds(1));

  server.Resume();
  EXPECT_TRUE(a.Get().status.ok());
  EXPECT_TRUE(b.Get().status.ok());
  net_server.Shutdown();
}

TEST_F(NetFixture, DeadlineShedsAsDeadlineExceeded) {
  Engine engine(BuildPlan());
  api::ServerOptions sopts;
  sopts.start_paused = true;  // the call must wait past its deadline
  api::Server server(&engine, sopts);
  net::Server net_server(&server);
  ASSERT_TRUE(net_server.Start().ok());

  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_server.port()).ok());
  net::CallOptions opts;
  opts.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  net::AsyncCall a =
      client.ExecuteAsync("user_by_id", {Value::Int(1)}, opts);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  server.Resume();  // formation sheds the expired call
  const ResultSet rs = a.Get();
  EXPECT_EQ(rs.status.code(), StatusCode::kDeadlineExceeded)
      << rs.status.ToString();
  net_server.Shutdown();
}

// api::Server::Shutdown() with live TCP connections: every in-flight call
// drains as a kUnavailable ERROR frame; no client hangs.
TEST_F(NetFixture, ShutdownDrainsInflightAsUnavailable) {
  Engine engine(BuildPlan());
  api::ServerOptions sopts;
  sopts.start_paused = true;  // hold calls in flight deterministically
  api::Server server(&engine, sopts);
  net::Server net_server(&server);
  ASSERT_TRUE(net_server.Start().ok());

  constexpr int kClients = 4;
  std::atomic<int> unavailable{0};
  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      net::Client client;
      if (!client.Connect("127.0.0.1", net_server.port()).ok()) return;
      // One blocking call (parks in the reaper) and one async handle.
      net::AsyncCall a = client.ExecuteAsync("user_by_id", {Value::Int(1)});
      started.fetch_add(1);
      const ResultSet blocking =
          client.Execute("by_country", {Value::Int(1)});
      const ResultSet async_rs = a.Get();
      if (blocking.status.code() == StatusCode::kUnavailable &&
          async_rs.status.code() == StatusCode::kUnavailable) {
        unavailable.fetch_add(1);
      }
    });
  }
  while (started.load() < kClients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Give the blocking Executes time to reach the server's queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Shutdown();  // drains every queued call with kUnavailable
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(unavailable.load(), kClients);

  // New submissions after shutdown are refused inline with kUnavailable.
  net::Client late;
  ASSERT_TRUE(late.Connect("127.0.0.1", net_server.port()).ok());
  EXPECT_EQ(late.Execute("user_by_id", {Value::Int(1)}).status.code(),
            StatusCode::kUnavailable);
  net_server.Shutdown();
}

// PR 7's accounting identity must balance when every client sits on the far
// side of a socket: submitted == admitted+rejected+shed+cancelled+unavailable.
TEST_F(NetFixture, AccountingIdentityBalancesOverTcp) {
  Engine engine(BuildPlan());
  api::ServerOptions sopts;
  sopts.max_queue_depth = 6;
  sopts.min_batch_window = std::chrono::microseconds(300);
  api::Server server(&engine, sopts);
  net::Server net_server(&server);
  ASSERT_TRUE(net_server.Start().ok());

  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      net::Client client;
      if (!client.Connect("127.0.0.1", net_server.port()).ok()) return;
      Rng rng(0xACC0 + static_cast<uint64_t>(c));
      for (int i = 0; i < 30; ++i) {
        const int mode = static_cast<int>(rng.Uniform(0, 3));
        net::CallOptions opts;
        if (mode == 1) {
          // Tight engine-side deadline: some calls shed.
          opts.deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(
                              rng.Uniform(50, 400));
        }
        if (mode == 3) {
          net::AsyncCall a = client.ExecuteAsync(
              "user_by_id", {Value::Int(rng.Uniform(0, 39))}, opts);
          a.Cancel();  // race cancellation against batch formation
          (void)a.Get();
          continue;
        }
        (void)client.Execute("by_country", {Value::Int(rng.Uniform(0, 3))},
                             opts);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  server.Pause();  // quiesce: drain the queue into the counters
  const api::Server::Stats s = server.stats();
  EXPECT_EQ(s.statements_submitted,
            s.statements_admitted + s.statements_rejected +
                s.statements_shed + s.statements_cancelled +
                s.statements_unavailable)
      << "submitted=" << s.statements_submitted
      << " admitted=" << s.statements_admitted
      << " rejected=" << s.statements_rejected
      << " shed=" << s.statements_shed
      << " cancelled=" << s.statements_cancelled
      << " unavailable=" << s.statements_unavailable;
  server.Resume();
  net_server.Shutdown();
}

// --- hostile input -----------------------------------------------------------

/// Raw-socket helper for the protocol-abuse tests.
class RawConn {
 public:
  /// `rcvbuf` > 0 shrinks SO_RCVBUF BEFORE connect (window negotiation
  /// happens at SYN time; setting it later has no effect on the peer).
  bool Connect(uint16_t port, int rcvbuf = 0) {
    fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    timeval tv{2, 0};  // bounded reads: a stalled server fails the test
    (void)setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    if (rcvbuf > 0) {
      (void)setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) close(fd_);
  }
  bool Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }
  /// Reads until EOF, error, or timeout; returns the bytes.
  std::string ReadAll() {
    std::string out;
    char buf[4096];
    for (;;) {
      const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

// Seeded garbage-stream fuzz: random bytes, bit-flipped and truncated valid
// frames, and pathological length prefixes against a live listener. The
// server must answer a typed ERROR or close the connection — never crash,
// never stall — and must still serve a well-formed client afterwards.
TEST_F(NetFixture, GarbageStreamsNeverWedgeTheServer) {
  Engine engine(BuildPlan());
  api::Server server(&engine);
  net::Server net_server(&server);
  ASSERT_TRUE(net_server.Start().ok());

  const uint64_t seed = 0xF022ED;  // log + rerun with this seed to repro
  Rng rng(seed);
  const std::string hello = net::SealFrame(
      net::FrameType::kHello, 1, net::EncodeHello({net::kProtocolVersion,
                                                   "fuzz"}));
  for (int iter = 0; iter < 120; ++iter) {
    RawConn conn;
    ASSERT_TRUE(conn.Connect(net_server.port())) << "iteration " << iter;
    const int kind = static_cast<int>(rng.Uniform(0, 4));
    std::string payload;
    switch (kind) {
      case 0: {  // pure random bytes
        const size_t n = static_cast<size_t>(rng.Uniform(1, 600));
        for (size_t i = 0; i < n; ++i) {
          payload.push_back(static_cast<char>(rng.Uniform(0, 255)));
        }
        break;
      }
      case 1: {  // valid frame with one flipped bit
        payload = net::SealFrame(
            net::FrameType::kExecute, 9,
            net::EncodeExecute({true, 0, "user_by_id", 0, {Value::Int(1)}}));
        const size_t byte =
            static_cast<size_t>(rng.Uniform(0, payload.size() - 1));
        payload[byte] ^= static_cast<char>(1 << rng.Uniform(0, 7));
        break;
      }
      case 2: {  // truncated valid frame, then EOF
        std::string full = hello;
        payload = full.substr(
            0, static_cast<size_t>(rng.Uniform(1, full.size() - 1)));
        break;
      }
      case 3: {  // pathological length prefix
        const uint32_t len =
            rng.Bernoulli(0.5) ? 0xffffffffu
                               : static_cast<uint32_t>(
                                     rng.Uniform(64 << 20, 1 << 30));
        payload.append(reinterpret_cast<const char*>(&len), 4);
        for (int i = 0; i < 12; ++i) {
          payload.push_back(static_cast<char>(rng.Uniform(0, 255)));
        }
        break;
      }
      case 4: {  // valid HELLO, then garbage mid-stream
        payload = hello;
        const size_t n = static_cast<size_t>(rng.Uniform(1, 200));
        for (size_t i = 0; i < n; ++i) {
          payload.push_back(static_cast<char>(rng.Uniform(0, 255)));
        }
        break;
      }
    }
    (void)conn.Send(payload);  // peer may close first: either is fine
    if (rng.Bernoulli(0.5)) {
      // Half the time, wait for the server's verdict (typed ERROR frame or
      // clean close); the other half, slam the connection shut mid-stream.
      // SHUT_WR first: the server sees EOF on streams it was (correctly)
      // still waiting on, so the verdict arrives promptly.
      (void)shutdown(conn.fd(), SHUT_WR);
      (void)conn.ReadAll();
    }
  }

  // The listener survived: a well-formed session still works end to end.
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", net_server.port()).ok());
  const ResultSet rs = client.Execute("user_by_id", {Value::Int(3)});
  EXPECT_TRUE(rs.status.ok()) << rs.status.ToString();
  const net::NetServerStats ns = net_server.stats();
  EXPECT_GT(ns.protocol_errors, 0u);
  net_server.Shutdown();
}

// A reader that stops consuming while requesting work gets one grace
// kResourceExhausted ERROR and a close — bounded memory, no torn frames.
TEST_F(NetFixture, SlowReaderOverflowsToTypedErrorAndClose) {
  Engine engine(BuildPlan());
  api::Server server(&engine);
  net::NetServerOptions nopts;
  nopts.max_write_buffer = 4096;  // tiny cap so the test converges fast
  net::Server net_server(&server, nopts);
  ASSERT_TRUE(net_server.Start().ok());

  // Tiny receive window (set pre-connect) so the server's sends back up;
  // the kernel still autotunes the server's SEND buffer into the megabytes,
  // so the pump below must outrun that too.
  RawConn conn;
  ASSERT_TRUE(conn.Connect(net_server.port(), /*rcvbuf=*/2048));
  const std::string hello = net::SealFrame(
      net::FrameType::kHello, 1,
      net::EncodeHello({net::kProtocolVersion, "slow"}));
  ASSERT_TRUE(conn.Send(hello));
  // Pump queries without ever reading a response. Each by_country result is
  // ~350 bytes; 40k responses ≈ 14 MB — far past any kernel buffering, so
  // the server's own write buffer must hit its 4 KiB cap.
  const std::string exec = net::SealFrame(
      net::FrameType::kExecute, 2,
      net::EncodeExecute({true, 0, "by_country", 0, {Value::Int(1)}}));
  bool send_failed = false;
  for (int i = 0; i < 40000 && !send_failed; ++i) {
    send_failed = !conn.Send(exec);
    if ((i & 0xff) == 0 && net_server.stats().overflow_closes > 0) break;
  }
  // Overflow close: within bounded time the server must have cut us off.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (net_server.stats().overflow_closes == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(net_server.stats().overflow_closes, 1u);

  // The stream we did get is intact frame-by-frame (nothing torn), and a
  // fresh client is unaffected.
  const std::string got = conn.ReadAll();
  size_t off = 0;
  while (off < got.size()) {
    net::Frame f;
    size_t consumed = 0;
    const net::DecodeStatus ds = net::DecodeFrame(
        got.substr(off), net::kDefaultMaxPayload, &f, &consumed);
    if (ds != net::DecodeStatus::kFrame) break;  // trailing partial is fine
    off += consumed;
  }
  net::Client fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", net_server.port()).ok());
  EXPECT_TRUE(fresh.Execute("user_by_id", {Value::Int(1)}).status.ok());
  net_server.Shutdown();
}

// Protocol-level misuse gets typed answers, not hangups mid-parse: HELLO
// must come first, version mismatches are kUnimplemented, unknown frame
// types are kUnimplemented on a surviving connection.
TEST_F(NetFixture, ProtocolErrorsAreTyped) {
  Engine engine(BuildPlan());
  api::Server server(&engine);
  net::Server net_server(&server);
  ASSERT_TRUE(net_server.Start().ok());

  {  // EXECUTE before HELLO -> FailedPrecondition, then close
    RawConn conn;
    ASSERT_TRUE(conn.Connect(net_server.port()));
    ASSERT_TRUE(conn.Send(net::SealFrame(
        net::FrameType::kExecute, 1,
        net::EncodeExecute({true, 0, "user_by_id", 0, {Value::Int(1)}}))));
    const std::string got = conn.ReadAll();
    net::Frame f;
    size_t consumed = 0;
    ASSERT_EQ(net::DecodeFrame(got, net::kDefaultMaxPayload, &f, &consumed),
              net::DecodeStatus::kFrame);
    ASSERT_EQ(f.type, net::FrameType::kError);
    net::ErrorMsg e;
    ASSERT_TRUE(net::DecodeError(f.body, &e));
    EXPECT_EQ(e.code, StatusCode::kFailedPrecondition);
  }
  {  // future protocol version -> kUnimplemented
    RawConn conn;
    ASSERT_TRUE(conn.Connect(net_server.port()));
    ASSERT_TRUE(conn.Send(net::SealFrame(
        net::FrameType::kHello, 1,
        net::EncodeHello({net::kProtocolVersion + 7, "time traveler"}))));
    const std::string got = conn.ReadAll();
    net::Frame f;
    size_t consumed = 0;
    ASSERT_EQ(net::DecodeFrame(got, net::kDefaultMaxPayload, &f, &consumed),
              net::DecodeStatus::kFrame);
    ASSERT_EQ(f.type, net::FrameType::kError);
    net::ErrorMsg e;
    ASSERT_TRUE(net::DecodeError(f.body, &e));
    EXPECT_EQ(e.code, StatusCode::kUnimplemented);
  }
  {  // unknown frame type after a valid HELLO -> typed error, conn survives
    RawConn conn;
    ASSERT_TRUE(conn.Connect(net_server.port()));
    ASSERT_TRUE(conn.Send(net::SealFrame(
        net::FrameType::kHello, 1,
        net::EncodeHello({net::kProtocolVersion, "ok"}))));
    ASSERT_TRUE(conn.Send(
        net::SealFrame(static_cast<net::FrameType>(0x55), 2, "mystery")));
    ASSERT_TRUE(conn.Send(net::SealFrame(
        net::FrameType::kExecute, 3,
        net::EncodeExecute({true, 0, "user_by_id", 0, {Value::Int(1)}}))));
    // Expect PONG, ERROR(kUnimplemented), then a real RESULT.
    std::string got;
    char buf[4096];
    int frames_seen = 0;
    net::FrameType types[3] = {};
    while (frames_seen < 3) {
      const ssize_t n = recv(conn.fd(), buf, sizeof(buf), 0);
      if (n <= 0) break;
      got.append(buf, static_cast<size_t>(n));
      for (;;) {
        net::Frame f;
        size_t consumed = 0;
        if (net::DecodeFrame(got, net::kDefaultMaxPayload, &f, &consumed) !=
            net::DecodeStatus::kFrame) {
          break;
        }
        got.erase(0, consumed);
        if (frames_seen < 3) types[frames_seen] = f.type;
        ++frames_seen;
      }
    }
    ASSERT_EQ(frames_seen, 3);
    EXPECT_EQ(types[0], net::FrameType::kPong);
    EXPECT_EQ(types[1], net::FrameType::kError);
    EXPECT_EQ(types[2], net::FrameType::kResult);
  }
  net_server.Shutdown();
}

}  // namespace
}  // namespace shareddb
