// Differential workload fuzzer tests: the fixed smoke corpus (every seed's
// random concurrent workload must match the query-at-a-time oracle), pinned
// regressions for the bugs the first 1,000 seeds surfaced, the Session edge
// paths the fuzzer exercises structurally (cancel racing batch formation,
// deadline expiry while queued, unsupported Prepare/Execute shapes returning
// Status), and the repro-artifact pipeline self-test via fault injection.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "api/server.h"
#include "baseline/engine.h"
#include "core/plan_builder.h"
#include "testing/differential.h"
#include "testing_util.h"

namespace shareddb {
namespace {

namespace fs = std::filesystem;

testing::SeedReport RunOneSeed(uint64_t seed) {
  testing::RunOptions opts;
  opts.gen.seed = seed;
  return testing::RunSeed(opts);
}

// --- the fixed smoke corpus --------------------------------------------------

TEST(FuzzSmoke, CorpusOf32SeedsMatchesOracle) {
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    const testing::SeedReport r = RunOneSeed(seed);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.first_mismatch << " ["
                      << r.config << "]";
    EXPECT_GT(r.calls_compared, 0u) << "seed " << seed;
  }
}

TEST(FuzzSmoke, SeedRunsAreDeterministic) {
  // The workload (schema, data, calls, environment) is a pure function of
  // the seed. Which cancel/deadline calls land before admission is a timing
  // race by design, so only the TOTAL is invariant: every call is either
  // compared against the oracle or aborted-by-design.
  const testing::SeedReport a = RunOneSeed(7);
  const testing::SeedReport b = RunOneSeed(7);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.calls_compared + a.calls_aborted,
            b.calls_compared + b.calls_aborted);
}

// --- pinned regressions ------------------------------------------------------
//
// The first 1,000 fuzz seeds surfaced six mismatching seeds, all one root
// cause: ProbeOp's range-anchor path walked the B-tree from its beginning
// when the range had no lower bound — and the index total order places NULL
// keys before every value, so rows with NULL in the indexed column leaked
// into `col < X` probes (SQL: NULL fails every range). The oracle rechecks
// the whole predicate and was right. Each seed stays pinned here.

void ExpectSeedMatchesOracle(uint64_t seed) {
  const testing::SeedReport r = RunOneSeed(seed);
  EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.first_mismatch << " ["
                    << r.config << "]";
}

TEST(FuzzRegression, Seed383ProbeRangeNullKeys) { ExpectSeedMatchesOracle(383); }
TEST(FuzzRegression, Seed420ProbeRangeNullKeys) { ExpectSeedMatchesOracle(420); }
TEST(FuzzRegression, Seed442ProbeRangeNullKeys) { ExpectSeedMatchesOracle(442); }
TEST(FuzzRegression, Seed642ProbeRangeNullKeys) { ExpectSeedMatchesOracle(642); }
TEST(FuzzRegression, Seed693ProbeRangeNullKeys) { ExpectSeedMatchesOracle(693); }
TEST(FuzzRegression, Seed859ProbeRangeNullKeys) { ExpectSeedMatchesOracle(859); }

// The distilled unit form of that bug, independent of any seed: an
// upper-bound-only range probe over an index containing NULL keys.
TEST(FuzzRegression, ProbeOpenRangeExcludesNullIndexKeys) {
  Catalog catalog;
  Table* t = catalog.CreateTable(
      "t", Schema::Make({{"id", ValueType::kInt}, {"k", ValueType::kInt}}));
  for (int i = 0; i < 20; ++i) {
    t->Insert({Value::Int(i), i % 4 == 0 ? Value::Null() : Value::Int(i)}, 1);
  }
  t->CreateIndex("idx_k", "k");
  catalog.snapshots().Reset(1);

  GlobalPlanBuilder b(&catalog);
  b.AddQuery("below",
             logical::Probe("t", "idx_k",
                            Expr::Lt(Expr::Column(1), Expr::Param(0))));
  Engine engine(b.Build());
  api::Server server(&engine);
  auto session = server.OpenSession();
  const ResultSet rs = session->Execute("below", {Value::Int(10)});
  ASSERT_TRUE(rs.status.ok());
  // k in {1,2,3,5,6,7,9} below 10; NULL-keyed rows (every 4th) must not leak.
  EXPECT_EQ(rs.rows.size(), 7u);
  for (const Tuple& row : rs.rows) {
    EXPECT_FALSE(row[1].is_null()) << testing::CanonicalRow(row);
  }
}

// --- Session edge paths the fuzzer exercises structurally --------------------

class EdgeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    users_ = catalog_.CreateTable(
        "users", Schema::Make({{"user_id", ValueType::kInt},
                               {"country", ValueType::kInt}}));
    for (int i = 0; i < 30; ++i) {
      users_->Insert({Value::Int(i), Value::Int(i % 3)}, 1);
    }
    catalog_.snapshots().Reset(1);
  }

  std::unique_ptr<GlobalPlan> BuildPlan() {
    GlobalPlanBuilder b(&catalog_);
    b.AddQuery("user_by_id",
               logical::Scan("users", Expr::Eq(Expr::Column(0), Expr::Param(0))));
    b.AddQuery("two_params",
               logical::Scan("users", Expr::And({Expr::Ge(Expr::Column(0), Expr::Param(0)),
                                                 Expr::Lt(Expr::Column(0), Expr::Param(1))})));
    return b.Build();
  }

  Catalog catalog_;
  Table* users_;
};

// Cancel racing batch formation: on a paused server the drain is
// deterministic (Aborted); on a live driver the cancel may lose the race and
// the statement then runs to completion — both outcomes are legal, an abort
// must only ever be an Aborted status, never a crash or a hang.
TEST_F(EdgeFixture, CancelRacingBatchFormation) {
  Engine engine(BuildPlan());
  api::ServerOptions popts;
  popts.start_paused = true;
  {
    api::Server server(&engine, popts);
    auto session = server.OpenSession();
    api::AsyncResult r = session->ExecuteAsync("user_by_id", {Value::Int(1)});
    r.Cancel();
    server.StepBatch();
    const ResultSet rs = r.Get();
    EXPECT_EQ(rs.status.code(), StatusCode::kAborted);
  }

  Engine live_engine(BuildPlan());
  api::ServerOptions lopts;
  lopts.min_batch_window = std::chrono::microseconds(200);
  api::Server server(&live_engine, lopts);
  auto session = server.OpenSession();
  int aborted = 0, completed = 0;
  for (int i = 0; i < 60; ++i) {
    api::AsyncResult r = session->ExecuteAsync("user_by_id", {Value::Int(i % 30)});
    if (i % 2 == 0) std::this_thread::yield();
    r.Cancel();
    const ResultSet rs = r.Get();
    if (rs.status.ok()) {
      ++completed;
      EXPECT_EQ(rs.rows.size(), 1u);
    } else {
      EXPECT_EQ(rs.status.code(), StatusCode::kAborted);
      ++aborted;
    }
  }
  EXPECT_EQ(aborted + completed, 60);
}

// Deadline expiry while the statement is still queued (driver sitting in a
// long gather window): GetWithDeadline must cancel, flush the driver and
// come back with Aborted — not hang, not return garbage.
TEST_F(EdgeFixture, DeadlineExpiryWhileQueued) {
  Engine engine(BuildPlan());
  api::ServerOptions opts;
  opts.min_batch_window = std::chrono::milliseconds(200);
  api::Server server(&engine, opts);
  auto session = server.OpenSession();
  api::AsyncResult r = session->ExecuteAsync("user_by_id", {Value::Int(3)});
  const auto t0 = std::chrono::steady_clock::now();
  const ResultSet rs = r.GetWithDeadline(t0 + std::chrono::milliseconds(5));
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(rs.status.code(), StatusCode::kAborted) << rs.status.ToString();
  // Terminal within the gather window plus slack — the cancel was flushed.
  EXPECT_LT(waited, std::chrono::seconds(2));
}

// Unsupported shapes surface as Status, never as an abort: unknown names on
// Prepare/Execute, invalid handles, and parameter-arity violations (the
// introspection the fuzzer itself relies on).
TEST_F(EdgeFixture, UnsupportedShapesReturnStatus) {
  Engine engine(BuildPlan());
  api::Server server(&engine);
  auto session = server.OpenSession();

  api::PreparedStatement bad;
  EXPECT_EQ(session->Prepare("no_such_query", &bad).code(), StatusCode::kNotFound);
  EXPECT_FALSE(bad.valid());
  EXPECT_EQ(session->Execute(bad, {}).status.code(), StatusCode::kInvalidArgument);

  api::PreparedStatement two;
  ASSERT_TRUE(session->Prepare("two_params", &two).ok());
  EXPECT_EQ(two.num_params(), 2u);
  // Short parameter vector: InvalidArgument from the engine's arity check.
  const ResultSet short_params = session->Execute(two, {Value::Int(1)});
  EXPECT_EQ(short_params.status.code(), StatusCode::kInvalidArgument);
  // Exact arity works.
  const ResultSet ok = session->Execute(two, {Value::Int(1), Value::Int(5)});
  ASSERT_TRUE(ok.status.ok());
  EXPECT_EQ(ok.rows.size(), 4u);

  // Oracle-side mirror: Status-first lookups and arity checks.
  Catalog oracle_catalog;
  Table* t = oracle_catalog.CreateTable(
      "users", Schema::Make({{"user_id", ValueType::kInt}}));
  t->Insert({Value::Int(1)}, 1);
  oracle_catalog.snapshots().Reset(1);
  baseline::BaselineEngine oracle(&oracle_catalog, SystemXLikeProfile());
  oracle.AddQuery("by_id", logical::Scan("users", Expr::Eq(Expr::Column(0),
                                                           Expr::Param(0))));
  EXPECT_EQ(oracle.TryFindStatement("nope"), -1);
  EXPECT_EQ(oracle.NumParams(0), 1u);
  EXPECT_EQ(oracle.Execute(0, {}).result.status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(oracle.Execute(99, {}).result.status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(oracle.Execute(0, {Value::Int(1)}).result.status.ok());
}

// --- repro-artifact pipeline self-test ---------------------------------------

TEST(FuzzArtifact, ForcedMismatchWritesReplayableArtifact) {
  const std::string dir =
      (fs::temp_directory_path() / "sdb_fuzz_artifact_test").string();
  fs::create_directories(dir);
  testing::RunOptions opts;
  opts.gen.seed = 11;
  opts.artifact_dir = dir;
  opts.inject_fault = true;

  const testing::SeedReport r = testing::RunSeed(opts);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.artifact_path.empty());
  ASSERT_TRUE(fs::exists(r.artifact_path)) << r.artifact_path;

  // The artifact records the injection and replays to the same mismatch.
  std::ifstream in(r.artifact_path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("inject_fault=1"), std::string::npos);
  EXPECT_NE(contents.find("calls:"), std::string::npos);

  std::string log;
  EXPECT_TRUE(testing::ReplayArtifact(r.artifact_path, &log)) << log;
  EXPECT_NE(log.find("MISMATCH"), std::string::npos) << log;

  // Without fault injection the same seed is clean — the mismatch really
  // came from the injection, not the engines.
  opts.inject_fault = false;
  opts.artifact_dir.clear();
  EXPECT_TRUE(testing::RunSeed(opts).ok);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace shareddb
