// Edge cases for the query-indexing fast paths added on top of the core
// operators: anchored-LIKE range extraction boundaries (0xFF prefixes,
// '_' wildcards, case folding), MergeCost boundaries, and the shared index
// probe's fallback paths.

#include <gtest/gtest.h>

#include "core/ops/probe_op.h"
#include "expr/predicate.h"
#include "storage/catalog.h"

namespace shareddb {
namespace {

static const std::vector<Value> kNoParams;

TEST(AnchoredLike, PrefixOfAll0xFFHasNoUpperBound) {
  const std::string ff(3, static_cast<char>(0xFF));
  const ExprPtr like = Expr::Like(Expr::Column(0), ff + "%", false);
  const AnalyzedPredicate pred = AnalyzePredicate(like);
  ASSERT_EQ(pred.ranges.size(), 1u);
  EXPECT_TRUE(pred.ranges[0].lo.has_value());
  EXPECT_FALSE(pred.ranges[0].hi.has_value());  // no successor exists
  // Correctness: strings above and below the prefix.
  EXPECT_TRUE(pred.ranges[0].Matches(Value::Str(ff + "zzz")));
  EXPECT_FALSE(pred.ranges[0].Matches(Value::Str("abc")));
}

TEST(AnchoredLike, TrailingByteIncrementCarries) {
  // Prefix "a\xff": successor must carry into "b".
  const std::string p = std::string("a") + static_cast<char>(0xFF);
  const ExprPtr like = Expr::Like(Expr::Column(0), p + "%", false);
  const AnalyzedPredicate pred = AnalyzePredicate(like);
  ASSERT_EQ(pred.ranges.size(), 1u);
  ASSERT_TRUE(pred.ranges[0].hi.has_value());
  EXPECT_EQ(pred.ranges[0].hi->AsString(), "b");
}

TEST(AnchoredLike, UnderscoreAnchorsTheRangeAndKeepsResidual) {
  // "ab_d%": the range is on prefix "ab"; the '_' still needs the LIKE.
  const ExprPtr like = Expr::Like(Expr::Column(0), "ab_d%", false);
  const AnalyzedPredicate pred = AnalyzePredicate(like);
  ASSERT_EQ(pred.ranges.size(), 1u);
  EXPECT_EQ(pred.ranges[0].lo->AsString(), "ab");
  EXPECT_EQ(pred.ranges[0].hi->AsString(), "ac");
  ASSERT_EQ(pred.residual.size(), 1u);
  EXPECT_TRUE(pred.residual[0]->EvalBool({Value::Str("abcd tail")}, kNoParams));
  EXPECT_FALSE(pred.residual[0]->EvalBool({Value::Str("abzz tail")}, kNoParams));
}

TEST(AnchoredLike, CaseInsensitivePatternsAreNotRangeExtracted) {
  // A range on the raw bytes would be wrong under case folding.
  const ExprPtr like = Expr::Like(Expr::Column(0), "Abc%", true);
  const AnalyzedPredicate pred = AnalyzePredicate(like);
  EXPECT_TRUE(pred.ranges.empty());
  ASSERT_EQ(pred.residual.size(), 1u);
  EXPECT_TRUE(pred.residual[0]->EvalBool({Value::Str("aBCdef")}, kNoParams));
}

TEST(AnchoredLike, LeadingWildcardStaysResidual) {
  for (const char* pattern : {"%abc", "_abc", "%"}) {
    const ExprPtr like = Expr::Like(Expr::Column(0), pattern, false);
    const AnalyzedPredicate pred = AnalyzePredicate(like);
    EXPECT_TRUE(pred.ranges.empty()) << pattern;
    EXPECT_FALSE(pred.residual.empty()) << pattern;
  }
}

TEST(AnchoredLike, ExactPatternWithoutWildcardsStaysResidual) {
  // "abc" (no wildcard) is equality-like; we keep it residual rather than
  // fabricate a range (the LIKE itself is cheap and exact).
  const ExprPtr like = Expr::Like(Expr::Column(0), "abc", false);
  const AnalyzedPredicate pred = AnalyzePredicate(like);
  EXPECT_TRUE(pred.ranges.empty());
}

TEST(AnchoredLike, CombinesWithOtherRangeConjuncts) {
  // col LIKE 'b%' AND col >= 'ba' -> lo must tighten to 'ba'.
  const ExprPtr conj = Expr::And(
      {Expr::Like(Expr::Column(0), "b%", false),
       Expr::Ge(Expr::Column(0), Expr::Literal(Value::Str("ba")))});
  const AnalyzedPredicate pred = AnalyzePredicate(conj);
  ASSERT_EQ(pred.ranges.size(), 1u);
  EXPECT_EQ(pred.ranges[0].lo->AsString(), "ba");
  EXPECT_EQ(pred.ranges[0].hi->AsString(), "c");
}

TEST(MergeCost, Boundaries) {
  EXPECT_EQ(QueryIdSet::MergeCost(0, 0), 1u);
  EXPECT_EQ(QueryIdSet::MergeCost(0, 1000), 1u);
  // Similar sizes: plain merge.
  EXPECT_EQ(QueryIdSet::MergeCost(10, 12), 22u);
  // Skewed: galloping, sublinear in the large side.
  EXPECT_LT(QueryIdSet::MergeCost(4, 4096), 4u + 4096u);
  EXPECT_GE(QueryIdSet::MergeCost(4, 4096), 4u);
}

TEST(QueryIdSetEdge, EmptyAndSingleton) {
  QueryIdSet empty;
  QueryIdSet one(42);
  EXPECT_TRUE(empty.Intersect(one).empty());
  EXPECT_EQ(one.Union(empty).ids(), std::vector<QueryId>{42});
  EXPECT_TRUE(one.Contains(42));
  EXPECT_FALSE(one.Contains(41));
  EXPECT_EQ(empty.HashValue(), QueryIdSet().HashValue());
}

class ProbeEdgeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    t_ = catalog_.CreateTable("t", Schema::Make({{"id", ValueType::kInt},
                                                 {"name", ValueType::kString},
                                                 {"v", ValueType::kInt}}));
    t_->CreateIndex("t_name", "name");
    for (int i = 0; i < 50; ++i) {
      t_->Insert({Value::Int(i), Value::Str("n" + std::to_string(i % 10)),
                  Value::Int(i)},
                 1);
    }
    catalog_.snapshots().Reset(1);
    ctx_.read_snapshot = 1;
    ctx_.write_version = 2;
  }

  DQBatch Run(std::vector<OpQuery> queries) {
    ProbeOp op(t_, "t_name");
    return op.RunCycle({}, queries, ctx_, nullptr);
  }

  Catalog catalog_;
  Table* t_;
  CycleContext ctx_;
};

TEST_F(ProbeEdgeFixture, EqGroupWithAndWithoutResidualsCoexist) {
  // q0: name = 'n3' (no residual); q1: name = 'n3' AND v > 20 (residual).
  OpQuery q0, q1;
  q0.id = 0;
  q0.predicate = Expr::Eq(Expr::Column(1), Expr::Literal(Value::Str("n3")));
  q1.id = 1;
  q1.predicate = Expr::And(
      {Expr::Eq(Expr::Column(1), Expr::Literal(Value::Str("n3"))),
       Expr::Gt(Expr::Column(2), Expr::Literal(Value::Int(20)))});
  const DQBatch out = Run({q0, q1});
  size_t q0_rows = 0, q1_rows = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.tuples[i][1].AsString(), "n3");
    if (out.qids[i].Contains(0)) ++q0_rows;
    if (out.qids[i].Contains(1)) {
      EXPECT_GT(out.tuples[i][2].AsInt(), 20);
      ++q1_rows;
    }
  }
  EXPECT_EQ(q0_rows, 5u);  // ids 3,13,23,33,43
  EXPECT_EQ(q1_rows, 3u);  // ids 23,33,43
}

TEST_F(ProbeEdgeFixture, RangeProbeOnStringPrefix) {
  OpQuery q;
  q.id = 0;
  q.predicate = Expr::Like(Expr::Column(1), "n3%", false);
  const DQBatch out = Run({q});
  EXPECT_EQ(out.size(), 5u);
}

TEST_F(ProbeEdgeFixture, NoConstraintOnIndexedColumnFallsBackToScan) {
  OpQuery q;
  q.id = 0;
  q.predicate = Expr::Lt(Expr::Column(2), Expr::Literal(Value::Int(5)));
  const DQBatch out = Run({q});
  EXPECT_EQ(out.size(), 5u);  // v in 0..4
}

TEST_F(ProbeEdgeFixture, MissingKeyYieldsNoRows) {
  OpQuery q;
  q.id = 0;
  q.predicate = Expr::Eq(Expr::Column(1), Expr::Literal(Value::Str("absent")));
  EXPECT_TRUE(Run({q}).empty());
}

}  // namespace
}  // namespace shareddb
