// Overload-robustness tests: bounded admission (kResourceExhausted
// backpressure), engine-side deadlines (kDeadlineExceeded shedding at batch
// formation), per-session in-flight caps, the client retry policy,
// abandoned-call cancellation, Shutdown() drain semantics, and the
// admission accounting identity:
//   submitted == admitted + rejected + shed + cancelled + unavailable

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "api/server.h"
#include "core/plan_builder.h"

namespace shareddb {
namespace {

class BackpressureFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    users_ = catalog_.CreateTable(
        "users", Schema::Make({{"user_id", ValueType::kInt},
                               {"country", ValueType::kInt},
                               {"account", ValueType::kInt}}));
    for (int i = 0; i < 40; ++i) {
      users_->Insert({Value::Int(i), Value::Int(i % 4), Value::Int(i * 10)}, 1);
    }
    catalog_.snapshots().Reset(1);
  }

  std::unique_ptr<GlobalPlan> BuildPlan() {
    GlobalPlanBuilder b(&catalog_);
    const SchemaPtr us = users_->schema();
    b.AddQuery("user_by_id",
               logical::Scan("users", Expr::Eq(Expr::Column(*us, "user_id"),
                                               Expr::Param(0))));
    b.AddQuery("by_country",
               logical::Scan("users", Expr::Eq(Expr::Column(*us, "country"),
                                               Expr::Param(0))));
    b.AddUpdate("credit", "users",
                {{"account", Expr::Add(Expr::Column(2), Expr::Param(1))}},
                Expr::Eq(Expr::Column(0), Expr::Param(0)));
    return b.Build();
  }

  Catalog catalog_;
  Table* users_;
};

// The queue boundary is exact: with max_queue_depth = N, the Nth submission
// is accepted and the (N+1)th rejected — synchronously, on a PAUSED server,
// proving the rejection path never depends on the driver making progress.
TEST_F(BackpressureFixture, QueueExactlyFullRejectsSynchronously) {
  Engine engine(BuildPlan());
  api::ServerOptions opts;
  opts.start_paused = true;
  opts.max_queue_depth = 3;
  api::Server server(&engine, opts);
  auto session = server.OpenSession();

  std::vector<api::AsyncResult> fs;
  for (int i = 0; i < 3; ++i) {
    fs.push_back(session->ExecuteAsync("user_by_id", {Value::Int(i)}));
    EXPECT_FALSE(fs.back().WaitFor(std::chrono::milliseconds(0))) << i;
  }
  // Queue exactly full: the next call is refused with a READY result.
  api::AsyncResult rejected =
      session->ExecuteAsync("user_by_id", {Value::Int(3)});
  ASSERT_TRUE(rejected.WaitFor(std::chrono::milliseconds(0)));
  EXPECT_EQ(rejected.Get().status.code(), StatusCode::kResourceExhausted);

  // Blocking Execute sees the same rejection without blocking on the
  // (paused) driver.
  const ResultSet blocked = session->Execute("user_by_id", {Value::Int(4)});
  EXPECT_EQ(blocked.status.code(), StatusCode::kResourceExhausted);

  // The queued calls are unharmed.
  server.StepBatch();
  for (auto& f : fs) EXPECT_TRUE(f.Get().status.ok());

  const api::Server::Stats stats = server.stats();
  EXPECT_EQ(stats.statements_submitted, 5u);
  EXPECT_EQ(stats.statements_admitted, 3u);
  EXPECT_EQ(stats.statements_rejected, 2u);
}

// Bounded queue + admission cap interact: a full queue drains cap-at-a-time
// (spilling the overflow), frees capacity for new arrivals, and rejects
// only while genuinely full.
TEST_F(BackpressureFixture, SpillThenRejectUnderAdmissionCap) {
  Engine engine(BuildPlan());
  api::ServerOptions opts;
  opts.start_paused = true;
  opts.max_queue_depth = 4;
  opts.max_admissions_per_batch = 2;
  api::Server server(&engine, opts);
  auto session = server.OpenSession();

  std::vector<api::AsyncResult> fs;
  for (int i = 0; i < 4; ++i) {
    fs.push_back(session->ExecuteAsync("user_by_id", {Value::Int(i)}));
  }
  EXPECT_EQ(session->Execute("user_by_id", {Value::Int(9)}).status.code(),
            StatusCode::kResourceExhausted);

  // One heartbeat admits 2, spills 2 — two slots free up.
  const BatchReport r = server.StepBatch();
  EXPECT_EQ(r.num_admitted, 2u);
  EXPECT_EQ(r.num_spilled, 2u);
  fs.push_back(session->ExecuteAsync("user_by_id", {Value::Int(4)}));
  fs.push_back(session->ExecuteAsync("user_by_id", {Value::Int(5)}));
  // Full again.
  EXPECT_EQ(session->Execute("user_by_id", {Value::Int(9)}).status.code(),
            StatusCode::kResourceExhausted);

  server.StepBatch();
  server.StepBatch();
  for (auto& f : fs) EXPECT_TRUE(f.Get().status.ok());
  const api::Server::Stats stats = server.stats();
  EXPECT_EQ(stats.statements_admitted, 6u);
  EXPECT_EQ(stats.statements_rejected, 2u);
}

// A session at its in-flight cap is rejected; fulfillment releases the
// gauge. Other sessions are unaffected (the cap is per session).
TEST_F(BackpressureFixture, PerSessionInflightCap) {
  Engine engine(BuildPlan());
  api::ServerOptions opts;
  opts.start_paused = true;
  opts.max_session_inflight = 2;
  api::Server server(&engine, opts);
  auto hog = server.OpenSession();
  auto other = server.OpenSession();

  api::AsyncResult a = hog->ExecuteAsync("user_by_id", {Value::Int(1)});
  api::AsyncResult b = hog->ExecuteAsync("user_by_id", {Value::Int(2)});
  EXPECT_EQ(hog->inflight(), 2);
  api::AsyncResult c = hog->ExecuteAsync("user_by_id", {Value::Int(3)});
  ASSERT_TRUE(c.WaitFor(std::chrono::milliseconds(0)));
  EXPECT_EQ(c.Get().status.code(), StatusCode::kResourceExhausted);

  // The neighbor still gets in: its own gauge is empty.
  api::AsyncResult d = other->ExecuteAsync("user_by_id", {Value::Int(4)});
  EXPECT_FALSE(d.WaitFor(std::chrono::milliseconds(0)));

  server.StepBatch();
  EXPECT_TRUE(a.Get().status.ok());
  EXPECT_TRUE(b.Get().status.ok());
  EXPECT_TRUE(d.Get().status.ok());
  EXPECT_EQ(hog->inflight(), 0);

  // Capacity released: the session can submit again.
  api::AsyncResult e = hog->ExecuteAsync("user_by_id", {Value::Int(5)});
  EXPECT_FALSE(e.WaitFor(std::chrono::milliseconds(0)));
  server.StepBatch();
  EXPECT_TRUE(e.Get().status.ok());
}

// An engine-side deadline that expires while the call queues sheds it AT
// FORMATION: counted in the report, never executed, result ready with
// kDeadlineExceeded.
TEST_F(BackpressureFixture, EngineDeadlineShedsAtFormation) {
  Engine engine(BuildPlan());
  api::ServerOptions opts;
  opts.start_paused = true;
  api::Server server(&engine, opts);
  auto session = server.OpenSession();

  api::CallOptions copts;
  copts.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  api::AsyncResult doomed =
      session->ExecuteAsync("user_by_id", {Value::Int(1)}, copts);
  api::AsyncResult fine = session->ExecuteAsync("user_by_id", {Value::Int(2)});

  const BatchReport r = server.StepBatch();
  EXPECT_EQ(r.num_shed, 1u);
  EXPECT_EQ(r.num_admitted, 1u);
  const ResultSet rs = doomed.Get();
  EXPECT_EQ(rs.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(fine.Get().status.ok());
  EXPECT_EQ(server.stats().statements_shed, 1u);
}

// A shed UPDATE's work must not be observable anywhere: not in the report's
// update count, not in the data.
TEST_F(BackpressureFixture, ShedUpdateNeverExecutes) {
  Engine engine(BuildPlan());
  api::ServerOptions opts;
  opts.start_paused = true;
  api::Server server(&engine, opts);
  auto session = server.OpenSession();

  api::CallOptions copts;
  copts.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  api::AsyncResult doomed =
      session->ExecuteAsync("credit", {Value::Int(5), Value::Int(100)}, copts);
  const BatchReport r = server.StepBatch();
  EXPECT_EQ(r.num_shed, 1u);
  EXPECT_EQ(r.num_updates, 0u);
  EXPECT_EQ(doomed.Get().status.code(), StatusCode::kDeadlineExceeded);

  api::AsyncResult probe = session->ExecuteAsync("user_by_id", {Value::Int(5)});
  server.StepBatch();
  const ResultSet rs = probe.Get();
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][2].AsInt(), 50);  // untouched
}

// Abandoned-call regression (the leak this PR fixes): dropping an
// AsyncResult without Get() must cancel the call engine-side — the next
// formation drains it and its work never runs.
TEST_F(BackpressureFixture, AbandonedAsyncResultCancelsEngineSide) {
  Engine engine(BuildPlan());
  api::ServerOptions opts;
  opts.start_paused = true;
  api::Server server(&engine, opts);
  auto session = server.OpenSession();

  {
    api::AsyncResult abandoned =
        session->ExecuteAsync("credit", {Value::Int(5), Value::Int(100)});
    // Handle dropped here without ever being consumed.
  }
  const BatchReport r = server.StepBatch();
  EXPECT_EQ(r.num_cancelled, 1u);
  EXPECT_EQ(r.num_admitted, 0u);
  EXPECT_EQ(r.num_updates, 0u);

  // The abandoned update's work is not observable in the data either.
  api::AsyncResult probe = session->ExecuteAsync("user_by_id", {Value::Int(5)});
  server.StepBatch();
  const ResultSet rs = probe.Get();
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][2].AsInt(), 50);

  // Move-assign gives the same guarantee for the overwritten call.
  api::AsyncResult slot =
      session->ExecuteAsync("credit", {Value::Int(6), Value::Int(100)});
  slot = session->ExecuteAsync("user_by_id", {Value::Int(6)});
  const BatchReport r2 = server.StepBatch();
  EXPECT_EQ(r2.num_cancelled, 1u);
  EXPECT_EQ(r2.num_admitted, 1u);
  ASSERT_TRUE(slot.Get().status.ok());
}

// The retry policy gives up after its attempt/budget limit and surfaces the
// ORIGINAL kResourceExhausted (never some synthetic timeout status).
TEST_F(BackpressureFixture, RetryPolicyGivesUpAndSurfacesRejection) {
  Engine engine(BuildPlan());
  api::ServerOptions opts;
  opts.start_paused = true;  // nothing ever drains: every attempt rejects
  opts.max_queue_depth = 1;
  api::Server server(&engine, opts);
  auto session = server.OpenSession();
  api::AsyncResult occupant =
      session->ExecuteAsync("user_by_id", {Value::Int(0)});

  api::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = std::chrono::microseconds(50);
  policy.budget = std::chrono::milliseconds(50);
  session->set_retry_policy(policy);
  const ResultSet rs = session->Execute("user_by_id", {Value::Int(1)});
  EXPECT_EQ(rs.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(session->stats().retries, 3u);    // 4 attempts = 3 retries
  EXPECT_EQ(session->stats().rejected, 4u);   // every attempt was rejected

  server.StepBatch();
  EXPECT_TRUE(occupant.Get().status.ok());
}

// With capacity freeing up mid-backoff, the retry policy converts a
// transient rejection into a success the caller never sees.
TEST_F(BackpressureFixture, RetryPolicyEventuallySucceeds) {
  Engine engine(BuildPlan());
  api::ServerOptions opts;
  opts.start_paused = true;
  opts.max_queue_depth = 1;
  api::Server server(&engine, opts);
  auto session = server.OpenSession();
  api::AsyncResult occupant =
      session->ExecuteAsync("user_by_id", {Value::Int(0)});

  // A background "driver": heartbeats every 200us drain the queue so a
  // later retry attempt finds a free slot and the accepted call completes.
  std::atomic<bool> done{false};
  std::thread stepper([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      server.StepBatch();
    }
  });

  auto client = server.OpenSession();
  api::RetryPolicy policy;
  policy.max_attempts = 200;
  policy.initial_backoff = std::chrono::microseconds(200);
  policy.max_backoff = std::chrono::microseconds(500);
  policy.budget = std::chrono::seconds(10);
  client->set_retry_policy(policy);
  const ResultSet rs = client->Execute("user_by_id", {Value::Int(7)});
  done.store(true, std::memory_order_release);
  stepper.join();

  ASSERT_TRUE(rs.status.ok());
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 7);
  EXPECT_TRUE(occupant.Get().status.ok());
}

// Shutdown() completes every queued-but-unadmitted call with kUnavailable
// and refuses later submissions the same way — no future left dangling.
TEST_F(BackpressureFixture, ShutdownDrainsQueuedWithUnavailable) {
  Engine engine(BuildPlan());
  api::ServerOptions opts;
  opts.start_paused = true;
  api::Server server(&engine, opts);
  auto session = server.OpenSession();

  std::vector<api::AsyncResult> fs;
  for (int i = 0; i < 3; ++i) {
    fs.push_back(session->ExecuteAsync("user_by_id", {Value::Int(i)}));
  }
  server.Shutdown();
  for (auto& f : fs) {
    ASSERT_TRUE(f.WaitFor(std::chrono::milliseconds(0)));
    EXPECT_EQ(f.Get().status.code(), StatusCode::kUnavailable);
  }
  EXPECT_TRUE(engine.submissions_closed());
  EXPECT_EQ(session->Execute("user_by_id", {Value::Int(9)}).status.code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(server.stats().statements_unavailable, 4u);
  server.Shutdown();  // idempotent
}

// Shutdown racing concurrent ExecuteAsync: every call terminates with a
// definite status (OK if it rode a final batch, kUnavailable otherwise) and
// the accounting identity holds afterwards. This is the TSan stress target.
TEST_F(BackpressureFixture, ShutdownRacesExecuteAsync) {
  Engine engine(BuildPlan());
  api::Server server(&engine);

  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> bad_status{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session = server.OpenSession();
      for (int i = 0; i < kCallsPerThread; ++i) {
        api::AsyncResult r = session->ExecuteAsync(
            "user_by_id", {Value::Int((t * kCallsPerThread + i) % 40)});
        const ResultSet rs = r.Get();  // must never hang
        if (!rs.status.ok() &&
            rs.status.code() != StatusCode::kUnavailable) {
          ++bad_status;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::microseconds(300));
  server.Shutdown();
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad_status.load(), 0);

  EXPECT_EQ(engine.PendingCount(), 0u);
  const Engine::AdmissionTotals t = engine.admission_totals();
  EXPECT_EQ(t.submitted,
            t.admitted + t.rejected + t.shed + t.cancelled + t.unavailable);
  EXPECT_EQ(t.submitted,
            static_cast<uint64_t>(kThreads * kCallsPerThread));
}

// The identity also holds for a mixed run exercising every terminal path
// at once, and the server's Stats mirror the engine's totals.
TEST_F(BackpressureFixture, AccountingIdentityAcrossAllPaths) {
  Engine engine(BuildPlan());
  api::ServerOptions opts;
  opts.start_paused = true;
  opts.max_queue_depth = 4;
  api::Server server(&engine, opts);
  auto session = server.OpenSession();

  std::vector<api::AsyncResult> fs;
  // 2 admitted.
  fs.push_back(session->ExecuteAsync("user_by_id", {Value::Int(1)}));
  fs.push_back(session->ExecuteAsync("user_by_id", {Value::Int(2)}));
  // 1 shed (expired engine-side deadline).
  api::CallOptions expired;
  expired.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  fs.push_back(session->ExecuteAsync("user_by_id", {Value::Int(3)}, expired));
  // 1 cancelled.
  fs.push_back(session->ExecuteAsync("user_by_id", {Value::Int(4)}));
  fs.back().Cancel();
  // 1 rejected: shed/cancelled entries still occupy queue slots until
  // formation, so the queue of 4 is full.
  api::AsyncResult rej = session->ExecuteAsync("user_by_id", {Value::Int(5)});
  EXPECT_EQ(rej.Get().status.code(), StatusCode::kResourceExhausted);

  server.StepBatch();
  for (auto& f : fs) {
    ASSERT_TRUE(f.WaitFor(std::chrono::milliseconds(0)));
    f.Get();
  }
  // 1 unavailable (queued at shutdown).
  api::AsyncResult orphan = session->ExecuteAsync("by_country", {Value::Int(0)});
  server.Shutdown();
  EXPECT_EQ(orphan.Get().status.code(), StatusCode::kUnavailable);

  const Engine::AdmissionTotals t = engine.admission_totals();
  EXPECT_EQ(t.submitted, 6u);
  EXPECT_EQ(t.admitted, 2u);
  EXPECT_EQ(t.rejected, 1u);
  EXPECT_EQ(t.shed, 1u);
  EXPECT_EQ(t.cancelled, 1u);
  EXPECT_EQ(t.unavailable, 1u);
  EXPECT_EQ(t.submitted,
            t.admitted + t.rejected + t.shed + t.cancelled + t.unavailable);

  const api::Server::Stats stats = server.stats();
  EXPECT_EQ(stats.statements_submitted, t.submitted);
  EXPECT_EQ(stats.statements_admitted, t.admitted);
  EXPECT_EQ(stats.statements_rejected, t.rejected);
  EXPECT_EQ(stats.statements_shed, t.shed);
  EXPECT_EQ(stats.statements_cancelled, t.cancelled);
  EXPECT_EQ(stats.statements_unavailable, t.unavailable);
}

}  // namespace
}  // namespace shareddb
