// End-to-end engine tests: batch formation, heartbeats, shared execution of
// concurrent queries with different parameters, updates with snapshot
// isolation, bounded computation, WAL-backed recovery.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "core/engine.h"
#include "core/plan_builder.h"

namespace shareddb {
namespace {

// A small bookstore-ish database exercised by all engine tests.
class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    users_ = catalog_.CreateTable(
        "users", Schema::Make({{"user_id", ValueType::kInt},
                               {"username", ValueType::kString},
                               {"country", ValueType::kInt},
                               {"account", ValueType::kInt}}));
    orders_ = catalog_.CreateTable(
        "orders", Schema::Make({{"order_id", ValueType::kInt},
                                {"user_id", ValueType::kInt},
                                {"amount", ValueType::kInt},
                                {"status", ValueType::kString}}));
    users_->CreateIndex("users_id", "user_id");
    const Version v = 1;
    for (int i = 0; i < 20; ++i) {
      users_->Insert({Value::Int(i), Value::Str("user" + std::to_string(i)),
                      Value::Int(i % 4), Value::Int(i * 100)},
                     v);
    }
    for (int i = 0; i < 60; ++i) {
      orders_->Insert({Value::Int(i), Value::Int(i % 20), Value::Int(i),
                       Value::Str(i % 3 == 0 ? "OK" : "PENDING")},
                      v);
    }
    catalog_.snapshots().Reset(v);
  }

  std::unique_ptr<GlobalPlan> BuildPlan() {
    GlobalPlanBuilder b(&catalog_);
    const SchemaPtr us = users_->schema();
    const SchemaPtr os = orders_->schema();

    // user_by_name(?name)
    b.AddQuery("user_by_name",
               logical::Scan("users", Expr::Eq(Expr::Column(*us, "username"),
                                               Expr::Param(0))));
    // orders_of_user(?uid): users ⋈ orders, status OK.
    b.AddQuery(
        "orders_of_user",
        logical::HashJoin(
            logical::Scan("users",
                          Expr::Eq(Expr::Column(*us, "user_id"), Expr::Param(0))),
            logical::Scan("orders", Expr::Eq(Expr::Column(*os, "status"),
                                             Expr::Literal(Value::Str("OK")))),
            "user_id", "user_id", nullptr, "u", "o"));
    // accounts_by_country: GROUP BY country SUM(account).
    b.AddQuery("accounts_by_country",
               logical::GroupBy(logical::Scan("users"), {"country"},
                                {{AggSpec{AggFunc::kSum, -1, "total"}, "account"},
                                 {AggSpec{AggFunc::kCount, -1, "cnt"}, ""}}));
    // top_spenders(?n): ORDER BY account DESC LIMIT ?.
    b.AddQuery("top_spenders",
               logical::TopN(logical::Scan("users"), {{"account", false}},
                             Expr::Param(0)));
    // DML.
    b.AddInsert("new_user", "users",
                {Expr::Param(0), Expr::Param(1), Expr::Param(2), Expr::Param(3)});
    // account := account + ?1 (assignment expressions read the old row).
    b.AddUpdate("credit_account", "users",
                {{"account", Expr::Add(Expr::Column(3), Expr::Param(1))}},
                Expr::Eq(Expr::Column(0), Expr::Param(0)));
    b.AddDelete("drop_user", "users", Expr::Eq(Expr::Column(0), Expr::Param(0)));
    return b.Build();
  }

  Catalog catalog_;
  Table* users_;
  Table* orders_;
};

TEST_F(EngineFixture, SingleQueryRoundTrip) {
  Engine engine(BuildPlan());
  ResultSet rs = engine.ExecuteSyncNamed("user_by_name", {Value::Str("user7")});
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 7);
  EXPECT_TRUE(rs.status.ok());
}

TEST_F(EngineFixture, LastReportReadableWhileBatchesRun) {
  // Regression (TSan): last_report() used to hand out a reference to a
  // field RunOneBatch overwrites — monitors polling between heartbeats
  // raced the batch thread. It now copies under the engine mutex; this
  // test keeps a racing reader in the suite so TSan guards the fix.
  Engine engine(BuildPlan());
  std::atomic<bool> done{false};
  std::thread monitor([&] {
    while (!done.load(std::memory_order_acquire)) {
      const BatchReport r = engine.last_report();
      // A torn read could pair a nonzero query count with an impossible
      // zero-version snapshot; mostly this just must not trip TSan.
      (void)r.num_queries;
    }
  });
  for (int round = 0; round < 20; ++round) {
    auto f = engine.SubmitNamed("user_by_name",
                                {Value::Str("user" + std::to_string(round))});
    engine.RunOneBatch();
    (void)f.get();
  }
  done.store(true, std::memory_order_release);
  monitor.join();
  EXPECT_EQ(engine.last_report().num_queries, 1u);
}

TEST_F(EngineFixture, BatchSharesOneScanAcrossManyQueries) {
  Engine engine(BuildPlan());
  std::vector<std::future<ResultSet>> futures;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    futures.push_back(engine.SubmitNamed(
        "user_by_name", {Value::Str("user" + std::to_string(i % 20))}));
  }
  EXPECT_EQ(engine.PendingCount(), static_cast<size_t>(n));
  const BatchReport report = engine.RunOneBatch();
  EXPECT_EQ(report.num_queries, static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    ResultSet rs = futures[i].get();
    ASSERT_EQ(rs.rows.size(), 1u) << i;
    EXPECT_EQ(rs.rows[0][0].AsInt(), i % 20);
  }
  // Bounded computation: the users table was scanned ONCE for all 50
  // queries — rows_scanned equals the table size, not 50x.
  const WorkStats total = report.TotalWork();
  EXPECT_EQ(total.rows_scanned, 20u);
}

TEST_F(EngineFixture, SharedJoinServesDifferentParameters) {
  Engine engine(BuildPlan());
  std::vector<std::future<ResultSet>> futures;
  for (int uid = 0; uid < 10; ++uid) {
    futures.push_back(engine.SubmitNamed("orders_of_user", {Value::Int(uid)}));
  }
  engine.RunOneBatch();
  for (int uid = 0; uid < 10; ++uid) {
    ResultSet rs = futures[uid].get();
    // user uid has orders uid, uid+20, uid+40; status OK iff divisible by 3.
    size_t expect = 0;
    for (int o = uid; o < 60; o += 20) {
      if (o % 3 == 0) ++expect;
    }
    EXPECT_EQ(rs.rows.size(), expect) << "uid " << uid;
    for (const Tuple& row : rs.rows) {
      EXPECT_EQ(row[0].AsInt(), uid);
      EXPECT_EQ(row[7].AsString(), "OK");
    }
  }
}

TEST_F(EngineFixture, GroupByAndTopNInOneBatch) {
  Engine engine(BuildPlan());
  auto f1 = engine.SubmitNamed("accounts_by_country", {});
  auto f2 = engine.SubmitNamed("top_spenders", {Value::Int(3)});
  auto f3 = engine.SubmitNamed("top_spenders", {Value::Int(5)});
  engine.RunOneBatch();
  ResultSet g = f1.get();
  EXPECT_EQ(g.rows.size(), 4u);  // countries 0..3
  int64_t total_cnt = 0;
  for (const Tuple& row : g.rows) total_cnt += row[2].AsInt();
  EXPECT_EQ(total_cnt, 20);
  ResultSet t3 = f2.get(), t5 = f3.get();
  ASSERT_EQ(t3.rows.size(), 3u);
  ASSERT_EQ(t5.rows.size(), 5u);
  EXPECT_EQ(t3.rows[0][3].AsInt(), 1900);  // top account
  // Both Top-N queries saw the same shared sort: t3 is a prefix of t5.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(TuplesEqual(t3.rows[i], t5.rows[i]));
  }
}

TEST_F(EngineFixture, UpdatesVisibleNextBatchNotSameBatch) {
  Engine engine(BuildPlan());
  // Same batch: an insert and a query for the inserted user.
  auto fu = engine.SubmitNamed("new_user", {Value::Int(100), Value::Str("newbie"),
                                            Value::Int(0), Value::Int(5)});
  auto fq = engine.SubmitNamed("user_by_name", {Value::Str("newbie")});
  engine.RunOneBatch();
  EXPECT_EQ(fu.get().update_count, 1u);
  // Snapshot isolation: the query read the pre-batch snapshot.
  EXPECT_TRUE(fq.get().rows.empty());
  // Next batch sees it.
  ResultSet rs = engine.ExecuteSyncNamed("user_by_name", {Value::Str("newbie")});
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 100);
}

TEST_F(EngineFixture, UpdateAndDeleteCountsReported) {
  Engine engine(BuildPlan());
  ResultSet up = engine.ExecuteSyncNamed("credit_account",
                                         {Value::Int(3), Value::Int(777)});
  EXPECT_EQ(up.update_count, 1u);
  ResultSet rs = engine.ExecuteSyncNamed("user_by_name", {Value::Str("user3")});
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][3].AsInt(), 300 + 777);
  ResultSet del = engine.ExecuteSyncNamed("drop_user", {Value::Int(3)});
  EXPECT_EQ(del.update_count, 1u);
  EXPECT_TRUE(
      engine.ExecuteSyncNamed("user_by_name", {Value::Str("user3")}).rows.empty());
  ResultSet del2 = engine.ExecuteSyncNamed("drop_user", {Value::Int(3)});
  EXPECT_EQ(del2.update_count, 0u);  // already gone
}

// Unknown statement names are a Status error on the ResultSet, not an abort
// (the old behavior killed the process; the error-path replaces that death).
TEST_F(EngineFixture, UnknownStatementNameIsStatusError) {
  Engine engine(BuildPlan());
  std::future<ResultSet> f = engine.SubmitNamed("no_such_statement", {});
  // The future is ready immediately: the statement never enters the queue.
  ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const ResultSet rs = f.get();
  EXPECT_EQ(rs.status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(rs.rows.empty());

  const ResultSet sync = engine.ExecuteSyncNamed("also_missing", {});
  EXPECT_EQ(sync.status.code(), StatusCode::kNotFound);
}

TEST_F(EngineFixture, OutOfRangeStatementIdIsStatusError) {
  Engine engine(BuildPlan());
  std::future<ResultSet> f = engine.Submit(9999, {});
  ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f.get().status.code(), StatusCode::kInvalidArgument);
}

// Admission control: a capped formation admits FIFO, spills the overflow to
// the next generation, and reports the counters.
TEST_F(EngineFixture, AdmissionCapSpillsOverflowToNextGeneration) {
  Engine engine(BuildPlan());
  std::vector<std::future<ResultSet>> fs;
  for (int i = 0; i < 5; ++i) {
    fs.push_back(engine.SubmitNamed("user_by_name",
                                    {Value::Str("user" + std::to_string(i))}));
  }

  const BatchReport r1 = engine.RunOneBatch(/*max_admissions=*/2);
  EXPECT_EQ(r1.queue_depth_at_formation, 5u);
  EXPECT_EQ(r1.num_admitted, 2u);
  EXPECT_EQ(r1.num_spilled, 3u);
  EXPECT_EQ(r1.num_queries, 2u);
  EXPECT_EQ(engine.PendingCount(), 3u);

  const BatchReport r2 = engine.RunOneBatch(/*max_admissions=*/2);
  EXPECT_EQ(r2.queue_depth_at_formation, 3u);
  EXPECT_EQ(r2.num_admitted, 2u);
  EXPECT_EQ(r2.num_spilled, 1u);

  const BatchReport r3 = engine.RunOneBatch(/*max_admissions=*/2);
  EXPECT_EQ(r3.num_admitted, 1u);
  EXPECT_EQ(r3.num_spilled, 0u);

  // FIFO admission: results arrive in submission order with per-call
  // telemetry recording the batches waited and the spill count.
  for (int i = 0; i < 5; ++i) {
    const ResultSet rs = fs[static_cast<size_t>(i)].get();
    ASSERT_EQ(rs.rows.size(), 1u) << i;
    EXPECT_EQ(rs.rows[0][0].AsInt(), i);
    const uint64_t expected_spills = static_cast<uint64_t>(i / 2);
    EXPECT_EQ(rs.admission_spills, expected_spills) << i;
    EXPECT_EQ(rs.batches_waited, expected_spills + 1) << i;
  }
}

// A cancel flag set before admission drains the entry with an Aborted
// status; it never executes.
TEST_F(EngineFixture, CancelledBeforeAdmissionIsAborted) {
  Engine engine(BuildPlan());
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  std::future<ResultSet> f =
      engine.SubmitNamed("user_by_name", {Value::Str("user1")}, cancel);
  auto f2 = engine.SubmitNamed("user_by_name", {Value::Str("user2")});
  cancel->store(true);
  const BatchReport r = engine.RunOneBatch();
  EXPECT_EQ(r.num_cancelled, 1u);
  EXPECT_EQ(r.num_admitted, 1u);
  EXPECT_EQ(f.get().status.code(), StatusCode::kAborted);
  EXPECT_TRUE(f2.get().status.ok());
}

TEST_F(EngineFixture, EmptyBatchIsNoop) {
  Engine engine(BuildPlan());
  const Version before = catalog_.snapshots().ReadSnapshot();
  const BatchReport r = engine.RunOneBatch();
  EXPECT_EQ(r.num_queries, 0u);
  EXPECT_EQ(catalog_.snapshots().ReadSnapshot(), before);
}

TEST_F(EngineFixture, BoundedComputationAsQueriesGrow) {
  // The paper's core claim: batch work is bounded by data size, independent
  // of the number of concurrent queries (for scans/joins).
  Engine engine(BuildPlan());
  auto run_batch = [&](int queries) {
    std::vector<std::future<ResultSet>> fs;
    for (int i = 0; i < queries; ++i) {
      fs.push_back(engine.SubmitNamed("orders_of_user", {Value::Int(i % 20)}));
    }
    const BatchReport r = engine.RunOneBatch();
    for (auto& f : fs) f.get();
    return r.TotalWork();
  };
  const WorkStats w10 = run_batch(10);
  const WorkStats w200 = run_batch(200);
  // Scan work identical; join work grows sub-linearly (more annotations but
  // one hash table build over at most the whole table).
  EXPECT_EQ(w10.rows_scanned, w200.rows_scanned);
  EXPECT_LE(w200.hash_builds, w10.hash_builds * 3);
  // A query-at-a-time system would do 20x the scans.
}

TEST_F(EngineFixture, VacuumKeepsResultsCorrect) {
  EngineOptions opts;
  opts.vacuum_interval = 1;
  Engine engine(BuildPlan(), opts);
  for (int round = 0; round < 5; ++round) {
    engine.ExecuteSyncNamed("credit_account",
                            {Value::Int(1), Value::Int(round * 10)});
  }
  ResultSet rs = engine.ExecuteSyncNamed("user_by_name", {Value::Str("user1")});
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][3].AsInt(), 100 + (0 + 10 + 20 + 30 + 40));
  EXPECT_LE(users_->PhysicalSize(), 21u);  // old versions reclaimed
}

TEST_F(EngineFixture, WalRecoveryRestoresCommittedState) {
  namespace fs = std::filesystem;
  const std::string wal_path =
      (fs::temp_directory_path() / "sdb_engine_wal_test.log").string();
  {
    EngineOptions opts;
    opts.durability.mode = DurabilityMode::kGroupCommit;
    opts.durability.wal_path = wal_path;
    Engine engine(BuildPlan(), opts);
    engine.ExecuteSyncNamed("new_user", {Value::Int(55), Value::Str("walter"),
                                         Value::Int(1), Value::Int(42)});
    engine.ExecuteSyncNamed("credit_account", {Value::Int(55), Value::Int(99)});
  }
  // "Crash": rebuild the database from the initial load + WAL replay.
  Catalog recovered;
  recovered.CreateTable("users", users_->schema());
  recovered.CreateTable("orders", orders_->schema());
  // Reload the same initial data (a real deployment would checkpoint it;
  // the base load used version 1, which the WAL's commit records cover).
  Table* rusers = recovered.MustGetTable("users");
  Table* rorders = recovered.MustGetTable("orders");
  for (const Row& r : users_->DumpRows()) {
    if (r.begin == 1) rusers->RecoverAppendRow(Row{r.data, 1, kVersionMax});
  }
  for (const Row& r : orders_->DumpRows()) {
    if (r.begin == 1) rorders->RecoverAppendRow(Row{r.data, 1, kVersionMax});
  }
  recovered.snapshots().Reset(1);
  ASSERT_TRUE(Recover(&recovered, "", wal_path).ok());
  const Version snap = recovered.snapshots().ReadSnapshot();
  bool found = false;
  rusers->ScanVisible(snap, [&](RowId, const Tuple& t) {
    if (t[1].AsString() == "walter") {
      EXPECT_EQ(t[3].AsInt(), 42 + 99);
      found = true;
    }
    return true;
  });
  EXPECT_TRUE(found);
  fs::remove(wal_path);
}

}  // namespace
}  // namespace shareddb
