// Table / MVCC tests: snapshot visibility, update/delete versioning, index
// maintenance and visibility filtering, vacuum, segments, write observer.

#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/table.h"

namespace shareddb {
namespace {

SchemaPtr UserSchema() {
  return Schema::Make({{"id", ValueType::kInt},
                       {"name", ValueType::kString},
                       {"account", ValueType::kInt}});
}

Tuple User(int64_t id, const std::string& name, int64_t account) {
  return {Value::Int(id), Value::Str(name), Value::Int(account)};
}

TEST(TableTest, InsertVisibility) {
  Table t("users", UserSchema());
  t.Insert(User(1, "ann", 100), /*commit=*/5);
  EXPECT_EQ(t.VisibleCount(4), 0u);  // before commit
  EXPECT_EQ(t.VisibleCount(5), 1u);  // at commit
  EXPECT_EQ(t.VisibleCount(100), 1u);
}

TEST(TableTest, UpdateCreatesNewVersion) {
  Table t("users", UserSchema());
  const RowId r0 = t.Insert(User(1, "ann", 100), 1);
  const RowId r1 = t.UpdateRow(r0, User(1, "ann", 250), 2);
  EXPECT_NE(r0, r1);
  EXPECT_EQ(t.PhysicalSize(), 2u);
  // Snapshot 1 sees the old account; snapshot 2 the new.
  EXPECT_TRUE(t.IsVisible(r0, 1));
  EXPECT_FALSE(t.IsVisible(r0, 2));
  EXPECT_TRUE(t.IsVisible(r1, 2));
  size_t count = 0;
  t.ScanVisible(1, [&](RowId, const Tuple& row) {
    EXPECT_EQ(row[2].AsInt(), 100);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1u);
  t.ScanVisible(2, [&](RowId, const Tuple& row) {
    EXPECT_EQ(row[2].AsInt(), 250);
    return true;
  });
}

TEST(TableTest, DeleteEndsVisibility) {
  Table t("users", UserSchema());
  const RowId r = t.Insert(User(1, "ann", 100), 1);
  EXPECT_TRUE(t.DeleteRow(r, 3));
  EXPECT_FALSE(t.DeleteRow(r, 4));  // already dead
  EXPECT_EQ(t.VisibleCount(2), 1u);
  EXPECT_EQ(t.VisibleCount(3), 0u);
}

TEST(TableTest, ScanRangeRespectsBounds) {
  Table t("users", UserSchema());
  for (int i = 0; i < 10; ++i) t.Insert(User(i, "u", i), 1);
  std::vector<int64_t> ids;
  t.ScanRange(3, 7, 1, [&](RowId, const Tuple& row) {
    ids.push_back(row[0].AsInt());
    return true;
  });
  EXPECT_EQ(ids, (std::vector<int64_t>{3, 4, 5, 6}));
  // Out-of-bounds end is clamped.
  ids.clear();
  t.ScanRange(8, 100, 1, [&](RowId, const Tuple& row) {
    ids.push_back(row[0].AsInt());
    return true;
  });
  EXPECT_EQ(ids, (std::vector<int64_t>{8, 9}));
}

TEST(TableTest, IndexLookupFiltersVisibility) {
  Table t("users", UserSchema());
  t.CreateIndex("users_id", "id");
  const RowId r0 = t.Insert(User(1, "ann", 100), 1);
  t.UpdateRow(r0, User(1, "ann", 300), 5);
  // Both versions are in the index; visibility filters them.
  std::vector<RowId> rows;
  t.IndexLookup("users_id", Value::Int(1), /*snapshot=*/1, &rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(t.GetRow(rows[0]).data[2].AsInt(), 100);
  rows.clear();
  t.IndexLookup("users_id", Value::Int(1), /*snapshot=*/5, &rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(t.GetRow(rows[0]).data[2].AsInt(), 300);
}

TEST(TableTest, IndexCreatedAfterInsertsBackfills) {
  Table t("users", UserSchema());
  for (int i = 0; i < 20; ++i) t.Insert(User(i % 5, "u", i), 1);
  t.CreateIndex("users_id", "id");
  std::vector<RowId> rows;
  t.IndexLookup("users_id", Value::Int(3), 1, &rows);
  EXPECT_EQ(rows.size(), 4u);  // 3, 8, 13, 18
}

TEST(TableTest, IndexRangeScan) {
  Table t("users", UserSchema());
  t.CreateIndex("users_account", "account");
  for (int i = 0; i < 10; ++i) t.Insert(User(i, "u", i * 100), 1);
  std::vector<int64_t> accounts;
  t.IndexRange("users_account", Value::Int(250), true, Value::Int(700), true, 1,
               [&](RowId, const Tuple& row) {
                 accounts.push_back(row[2].AsInt());
                 return true;
               });
  EXPECT_EQ(accounts, (std::vector<int64_t>{300, 400, 500, 600, 700}));
}

TEST(TableTest, FindIndexOnColumn) {
  Table t("users", UserSchema());
  t.CreateIndex("users_id", "id");
  EXPECT_NE(t.FindIndexOnColumn(0), nullptr);
  EXPECT_EQ(t.FindIndexOnColumn(1), nullptr);
  EXPECT_TRUE(t.HasIndex("users_id"));
  EXPECT_FALSE(t.HasIndex("nope"));
}

TEST(TableTest, VacuumReclaimsDeadVersions) {
  Table t("users", UserSchema());
  t.CreateIndex("users_id", "id");
  RowId r = t.Insert(User(1, "ann", 0), 1);
  for (Version v = 2; v <= 11; ++v) {
    r = t.UpdateRow(r, User(1, "ann", static_cast<int64_t>(v)), v);
  }
  EXPECT_EQ(t.PhysicalSize(), 11u);
  const size_t removed = t.Vacuum(/*horizon=*/11);
  EXPECT_EQ(removed, 10u);
  EXPECT_EQ(t.PhysicalSize(), 1u);
  EXPECT_EQ(t.VisibleCount(11), 1u);
  // Index was rebuilt consistently.
  std::vector<RowId> rows;
  t.IndexLookup("users_id", Value::Int(1), 11, &rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(t.GetRow(rows[0]).data[2].AsInt(), 11);
}

TEST(TableTest, VacuumKeepsVersionsAliveAtHorizon) {
  Table t("users", UserSchema());
  const RowId r0 = t.Insert(User(1, "a", 1), 1);
  t.UpdateRow(r0, User(1, "a", 2), 5);
  // Horizon 4: the old version (end=5) is still visible at snapshot 4.
  EXPECT_EQ(t.Vacuum(4), 0u);
  EXPECT_EQ(t.VisibleCount(4), 1u);
  // Horizon 5: old version dead everywhere >= 5.
  EXPECT_EQ(t.Vacuum(5), 1u);
  EXPECT_EQ(t.VisibleCount(5), 1u);
}

TEST(TableTest, SegmentsGeometry) {
  Table t("users", UserSchema());
  t.set_rows_per_segment(16);
  EXPECT_EQ(t.NumSegments(), 0u);
  for (int i = 0; i < 40; ++i) t.Insert(User(i, "u", 0), 1);
  EXPECT_EQ(t.NumSegments(), 3u);
}

TEST(TableTest, RecoveryHooks) {
  Table t("users", UserSchema());
  t.RecoverAppendRow(Row{User(1, "ann", 9), 3, kVersionMax});
  t.RecoverAppendRow(Row{User(2, "bob", 8), 3, 7});
  EXPECT_EQ(t.VisibleCount(3), 2u);
  EXPECT_EQ(t.VisibleCount(7), 1u);
  t.RecoverCloseRow(0, 9);
  EXPECT_EQ(t.VisibleCount(9), 0u);
  const std::vector<Row> dump = t.DumpRows();
  ASSERT_EQ(dump.size(), 2u);
  EXPECT_EQ(dump[0].end, 9u);
}

class CountingObserver : public TableWriteObserver {
 public:
  int inserts = 0, updates = 0, deletes = 0;
  void OnInsert(const Table&, RowId, const Tuple&, Version) override { ++inserts; }
  void OnUpdate(const Table&, RowId, RowId, const Tuple&, Version) override {
    ++updates;
  }
  void OnDelete(const Table&, RowId, Version) override { ++deletes; }
};

TEST(TableTest, WriteObserverSeesMutations) {
  Table t("users", UserSchema());
  CountingObserver obs;
  t.set_write_observer(&obs);
  const RowId r = t.Insert(User(1, "a", 1), 1);
  const RowId r2 = t.UpdateRow(r, User(1, "a", 2), 2);
  t.DeleteRow(r2, 3);
  EXPECT_EQ(obs.inserts, 1);
  EXPECT_EQ(obs.updates, 1);
  EXPECT_EQ(obs.deletes, 1);
  // Recovery hooks do NOT notify.
  t.RecoverAppendRow(Row{User(9, "z", 0), 1, kVersionMax});
  EXPECT_EQ(obs.inserts, 1);
}

TEST(CatalogTest, TablesAndIds) {
  Catalog cat;
  Table* a = cat.CreateTable("a", UserSchema());
  Table* b = cat.CreateTable("b", UserSchema());
  EXPECT_EQ(cat.NumTables(), 2u);
  EXPECT_EQ(cat.GetTable("a"), a);
  EXPECT_EQ(cat.GetTable("z"), nullptr);
  EXPECT_EQ(cat.TableId("b"), 1);
  EXPECT_EQ(cat.TableById(1), b);
  EXPECT_EQ(cat.TableId("zz"), -1);
}

TEST(SnapshotManagerTest, CommitAdvances) {
  SnapshotManager sm;
  EXPECT_EQ(sm.ReadSnapshot(), 0u);
  EXPECT_EQ(sm.WriteVersion(), 1u);
  EXPECT_EQ(sm.Commit(), 1u);
  EXPECT_EQ(sm.ReadSnapshot(), 1u);
  sm.Reset(10);
  EXPECT_EQ(sm.WriteVersion(), 11u);
}

}  // namespace
}  // namespace shareddb
