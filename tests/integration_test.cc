// Cross-module integration tests: the full TPC-W workload under the
// thread-per-operator runtime (must be result-identical to the inline
// runtime), WAL-backed TPC-W recovery, and snapshot isolation across mixed
// query/update batches on the real workload.

#include <gtest/gtest.h>

#include <filesystem>

#include "api/server.h"
#include "runtime/threaded_runtime.h"
#include "testing_util.h"
#include "tpcw/global_plan.h"
#include "tpcw/harness.h"
#include "tpcw/schema.h"

namespace shareddb {
namespace {

tpcw::TpcwScale TinyScale() {
  tpcw::TpcwScale s;
  s.num_items = 300;
  s.num_ebs = 1;
  return s;
}

// The threaded (thread-per-operator, Algorithm 1) runtime must produce
// exactly the inline runtime's results on the full TPC-W workload.
TEST(ThreadedTpcw, MatchesInlineAcrossInteractions) {
  const tpcw::TpcwScale scale = TinyScale();

  auto db_i = tpcw::MakeTpcwDatabase(scale, 13);
  Engine inline_engine(tpcw::BuildTpcwGlobalPlan(&db_i->catalog));

  auto db_t = tpcw::MakeTpcwDatabase(scale, 13);
  auto plan_t = tpcw::BuildTpcwGlobalPlan(&db_t->catalog);
  GlobalPlan* plan_ptr = plan_t.get();
  Engine threaded_engine(
      std::move(plan_t), EngineOptions{},
      std::make_unique<ThreadedRuntime>(plan_ptr, /*pin_threads=*/false));

  // Live drivers on both servers: each blocking Execute rides the next
  // heartbeat, preserving the statement-at-a-time snapshot semantics.
  api::Server inline_server(&inline_engine);
  api::Server threaded_server(&threaded_engine);
  auto session_i = inline_server.OpenSession();
  auto session_t = threaded_server.OpenSession();

  tpcw::EbState eb_i, eb_t;
  eb_i.customer_id = eb_t.customer_id = 3;
  Rng rng_i(55), rng_t(55);
  for (int w = 0; w < tpcw::kNumInteractions; ++w) {
    const auto wi = static_cast<tpcw::WebInteraction>(w);
    const auto calls_i =
        tpcw::BuildInteraction(wi, scale, &eb_i, &db_i->ids, &rng_i);
    const auto calls_t =
        tpcw::BuildInteraction(wi, scale, &eb_t, &db_t->ids, &rng_t);
    ASSERT_EQ(calls_i.size(), calls_t.size());
    for (size_t c = 0; c < calls_i.size(); ++c) {
      ResultSet a = session_i->Execute(calls_i[c].statement, calls_i[c].params);
      ResultSet b = session_t->Execute(calls_t[c].statement, calls_t[c].params);
      ExpectResultsEqual(a, b, calls_i[c].statement);
    }
  }
}

// Concurrent mixed batches on the threaded runtime: many queries + updates
// per heartbeat, across several heartbeats.
TEST(ThreadedTpcw, MixedBatchesAreConsistent) {
  const tpcw::TpcwScale scale = TinyScale();
  auto db = tpcw::MakeTpcwDatabase(scale, 13);
  auto plan = tpcw::BuildTpcwGlobalPlan(&db->catalog);
  GlobalPlan* plan_ptr = plan.get();
  Engine engine(std::move(plan), EngineOptions{},
                std::make_unique<ThreadedRuntime>(plan_ptr, false));
  api::ServerOptions sopts;
  sopts.start_paused = true;
  api::Server server(&engine, sopts);
  auto session = server.OpenSession();

  for (int round = 0; round < 5; ++round) {
    std::vector<api::AsyncResult> fs;
    for (int i = 0; i < 20; ++i) {
      fs.push_back(session->ExecuteAsync(
          "search_by_subject", {Value::Int((round * 20 + i) % 24)}));
    }
    const int64_t item = round;
    api::AsyncResult fu = session->ExecuteAsync(
        "decrement_stock", {Value::Int(item), Value::Int(1)});
    const BatchReport r = server.StepBatch();
    EXPECT_EQ(r.num_admitted, 21u);
    for (auto& f : fs) {
      const ResultSet rs = f.Get();
      EXPECT_TRUE(rs.status.ok());
    }
    EXPECT_EQ(fu.Get().update_count, 1u);
  }
  // All five decrements landed (one per batch, each visible to the next).
  api::AsyncResult f0 = session->ExecuteAsync("item_by_id", {Value::Int(0)});
  server.StepBatch();
  const ResultSet item0 = f0.Get();
  ASSERT_EQ(item0.rows.size(), 1u);
}

// Full TPC-W WAL round trip: run a write-heavy session with WAL enabled,
// "crash", recover from the initial load + log, verify a witness row.
TEST(TpcwRecovery, WalReplayRestoresOrders) {
  namespace fs = std::filesystem;
  const std::string wal_path =
      (fs::temp_directory_path() / "sdb_tpcw_wal_test.log").string();
  const tpcw::TpcwScale scale = TinyScale();

  int64_t order_id = -1;
  {
    auto db = tpcw::MakeTpcwDatabase(scale, 21);
    EngineOptions opts;
    opts.durability.mode = DurabilityMode::kGroupCommit;
    opts.durability.wal_path = wal_path;
    Engine engine(tpcw::BuildTpcwGlobalPlan(&db->catalog), std::move(opts));
    api::Server server(&engine);
    tpcw::SharedDbConnection conn(&server);
    tpcw::EbState eb;
    eb.customer_id = 2;
    Rng rng(9);
    RunInteraction(tpcw::WebInteraction::kShoppingCart, &conn, scale, &eb,
                   &db->ids, &rng);
    RunInteraction(tpcw::WebInteraction::kBuyRequest, &conn, scale, &eb,
                   &db->ids, &rng);
    RunInteraction(tpcw::WebInteraction::kBuyConfirm, &conn, scale, &eb,
                   &db->ids, &rng);
    order_id = eb.last_order_id;
    ASSERT_GE(order_id, 0);
  }

  // Recover: fresh load of the same initial data + WAL replay.
  auto recovered = tpcw::MakeTpcwDatabase(scale, 21);
  ASSERT_TRUE(Recover(&recovered->catalog, "", wal_path).ok());
  Engine engine(tpcw::BuildTpcwGlobalPlan(&recovered->catalog));
  api::Server server(&engine);
  auto session = server.OpenSession();
  const ResultSet lines = session->Execute("order_lines", {Value::Int(order_id)});
  EXPECT_GE(lines.rows.size(), 1u) << "order " << order_id;
  fs::remove(wal_path);
}

// Snapshot isolation on the real workload: queries batched WITH an update
// read the pre-batch snapshot; the next batch reads the new state.
TEST(TpcwIsolation, BatchReadsOneSnapshot) {
  const tpcw::TpcwScale scale = TinyScale();
  auto db = tpcw::MakeTpcwDatabase(scale, 5);
  Engine engine(tpcw::BuildTpcwGlobalPlan(&db->catalog));
  api::ServerOptions sopts;
  sopts.start_paused = true;
  api::Server server(&engine, sopts);
  auto session = server.OpenSession();
  const auto step_one = [&](const std::string& name, std::vector<Value> params) {
    api::AsyncResult r = session->ExecuteAsync(name, std::move(params));
    server.StepBatch();
    return r.Get();
  };

  const ResultSet before = step_one("item_by_id", {Value::Int(7)});
  ASSERT_EQ(before.rows.size(), 1u);
  const int64_t stock_before = before.rows[0][6].AsInt();

  auto fq = session->ExecuteAsync("item_by_id", {Value::Int(7)});
  auto fu = session->ExecuteAsync("decrement_stock",
                                  {Value::Int(7), Value::Int(3)});
  auto fq2 = session->ExecuteAsync("item_by_id", {Value::Int(7)});
  server.StepBatch();
  EXPECT_EQ(fu.Get().update_count, 1u);
  // Both queries of the batch saw the pre-batch stock, regardless of their
  // submission order relative to the update.
  EXPECT_EQ(fq.Get().rows[0][6].AsInt(), stock_before);
  EXPECT_EQ(fq2.Get().rows[0][6].AsInt(), stock_before);
  // The next batch sees the decrement.
  const ResultSet after = step_one("item_by_id", {Value::Int(7)});
  EXPECT_EQ(after.rows[0][6].AsInt(), stock_before - 3);
}

}  // namespace
}  // namespace shareddb
