// Tests for the expression engine: evaluation, three-valued logic, LIKE
// matching (including a property sweep against a reference matcher), binding,
// and predicate analysis.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "expr/expression.h"
#include "expr/like_matcher.h"
#include "expr/predicate.h"

namespace shareddb {
namespace {

const std::vector<Value> kNoParams;

Tuple Row(int64_t id, const std::string& name, double price) {
  return {Value::Int(id), Value::Str(name), Value::Double(price)};
}

TEST(ExprTest, LiteralsAndColumns) {
  const Tuple t = Row(7, "abc", 1.5);
  EXPECT_EQ(Expr::Literal(Value::Int(5))->Evaluate(t, kNoParams).AsInt(), 5);
  EXPECT_EQ(Expr::Column(0)->Evaluate(t, kNoParams).AsInt(), 7);
  EXPECT_EQ(Expr::Column(1)->Evaluate(t, kNoParams).AsString(), "abc");
}

TEST(ExprTest, Comparisons) {
  const Tuple t = Row(7, "abc", 1.5);
  auto col0 = Expr::Column(0);
  EXPECT_TRUE(Expr::Eq(col0, Expr::Literal(Value::Int(7)))->EvalBool(t, kNoParams));
  EXPECT_FALSE(Expr::Ne(col0, Expr::Literal(Value::Int(7)))->EvalBool(t, kNoParams));
  EXPECT_TRUE(Expr::Lt(col0, Expr::Literal(Value::Int(8)))->EvalBool(t, kNoParams));
  EXPECT_TRUE(Expr::Ge(col0, Expr::Literal(Value::Int(7)))->EvalBool(t, kNoParams));
  EXPECT_FALSE(Expr::Gt(col0, Expr::Literal(Value::Int(7)))->EvalBool(t, kNoParams));
}

TEST(ExprTest, ParamsAndBind) {
  const Tuple t = Row(7, "abc", 1.5);
  auto e = Expr::Eq(Expr::Column(0), Expr::Param(0));
  EXPECT_TRUE(e->EvalBool(t, {Value::Int(7)}));
  EXPECT_FALSE(e->EvalBool(t, {Value::Int(8)}));
  // Binding produces a parameter-free tree with the same semantics.
  auto bound = e->Bind({Value::Int(7)});
  EXPECT_TRUE(bound->EvalBool(t, kNoParams));
}

TEST(ExprTest, AndOrNot) {
  const Tuple t = Row(7, "abc", 1.5);
  auto yes = Expr::Literal(Value::Int(1));
  auto no = Expr::Literal(Value::Int(0));
  EXPECT_TRUE(Expr::And({yes, yes})->EvalBool(t, kNoParams));
  EXPECT_FALSE(Expr::And({yes, no})->EvalBool(t, kNoParams));
  EXPECT_TRUE(Expr::Or({no, yes})->EvalBool(t, kNoParams));
  EXPECT_FALSE(Expr::Or({no, no})->EvalBool(t, kNoParams));
  EXPECT_TRUE(Expr::Not(no)->EvalBool(t, kNoParams));
}

TEST(ExprTest, ThreeValuedLogic) {
  const Tuple t{Value::Null(), Value::Int(1)};
  auto null_cmp = Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(5)));
  // NULL = 5 evaluates to NULL, which is falsy.
  EXPECT_TRUE(null_cmp->Evaluate(t, kNoParams).is_null());
  EXPECT_FALSE(null_cmp->EvalBool(t, kNoParams));
  // NULL OR TRUE = TRUE; NULL AND TRUE = NULL.
  auto yes = Expr::Literal(Value::Int(1));
  EXPECT_TRUE(Expr::Or({null_cmp, yes})->EvalBool(t, kNoParams));
  EXPECT_TRUE(Expr::And({null_cmp, yes})->Evaluate(t, kNoParams).is_null());
  // IS NULL.
  EXPECT_TRUE(Expr::IsNull(Expr::Column(0))->EvalBool(t, kNoParams));
  EXPECT_FALSE(Expr::IsNull(Expr::Column(1))->EvalBool(t, kNoParams));
}

TEST(ExprTest, InAndBetween) {
  const Tuple t = Row(7, "abc", 1.5);
  auto in = Expr::In(Expr::Column(0), {Expr::Literal(Value::Int(5)),
                                       Expr::Literal(Value::Int(7))});
  EXPECT_TRUE(in->EvalBool(t, kNoParams));
  auto not_in = Expr::In(Expr::Column(0), {Expr::Literal(Value::Int(5))});
  EXPECT_FALSE(not_in->EvalBool(t, kNoParams));
  auto between = Expr::Between(Expr::Column(2), Expr::Literal(Value::Double(1.0)),
                               Expr::Literal(Value::Double(2.0)));
  EXPECT_TRUE(between->EvalBool(t, kNoParams));
}

TEST(ExprTest, LikeOnColumn) {
  const Tuple t = Row(7, "the quick brown fox", 1.5);
  EXPECT_TRUE(Expr::Like(Expr::Column(1), "%quick%")->EvalBool(t, kNoParams));
  EXPECT_FALSE(Expr::Like(Expr::Column(1), "%quack%")->EvalBool(t, kNoParams));
  EXPECT_TRUE(Expr::Like(Expr::Column(1), "the%fox")->EvalBool(t, kNoParams));
  // Parameterized pattern, bound later.
  auto e = Expr::LikeParam(Expr::Column(1), 0);
  EXPECT_TRUE(e->EvalBool(t, {Value::Str("%brown%")}));
  auto bound = e->Bind({Value::Str("%brown%")});
  EXPECT_TRUE(bound->EvalBool(t, kNoParams));
}

TEST(ExprTest, RemapAndOffsetColumns) {
  const Tuple joined{Value::Int(1), Value::Int(2), Value::Int(3)};
  auto e = Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(3)));
  auto shifted = e->OffsetColumns(2);
  EXPECT_TRUE(shifted->EvalBool(joined, kNoParams));
  std::vector<int> mapping{2, -1, -1};
  auto remapped = e->RemapColumns(mapping);
  EXPECT_TRUE(remapped->EvalBool(joined, kNoParams));
}

TEST(ExprTest, ToStringSmoke) {
  auto e = Expr::And({Expr::Eq(Expr::Column(0), Expr::Param(0)),
                      Expr::Like(Expr::Column(1), "%x%")});
  const std::string s = e->ToString();
  EXPECT_NE(s.find("AND"), std::string::npos);
  EXPECT_NE(s.find("LIKE"), std::string::npos);
}

// --- LikeMatcher -----------------------------------------------------------------

struct LikeCase {
  const char* pattern;
  const char* input;
  bool expect;
};

class LikeMatcherTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeMatcherTest, Matches) {
  const LikeCase& c = GetParam();
  LikeMatcher m(c.pattern);
  EXPECT_EQ(m.Matches(c.input), c.expect)
      << "pattern=" << c.pattern << " input=" << c.input;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LikeMatcherTest,
    ::testing::Values(
        LikeCase{"abc", "abc", true}, LikeCase{"abc", "abd", false},
        LikeCase{"abc", "ab", false}, LikeCase{"abc", "abcd", false},
        LikeCase{"%", "", true}, LikeCase{"%", "anything", true},
        LikeCase{"", "", true}, LikeCase{"", "x", false},
        LikeCase{"a%", "a", true}, LikeCase{"a%", "abc", true},
        LikeCase{"a%", "ba", false}, LikeCase{"%a", "a", true},
        LikeCase{"%a", "bca", true}, LikeCase{"%a", "ab", false},
        LikeCase{"%abc%", "xxabcyy", true}, LikeCase{"%abc%", "xxbcyy", false},
        LikeCase{"a%b%c", "aXbYc", true}, LikeCase{"a%b%c", "acb", false},
        LikeCase{"a_c", "abc", true}, LikeCase{"a_c", "ac", false},
        LikeCase{"a_c", "abbc", false}, LikeCase{"_", "x", true},
        LikeCase{"_", "", false}, LikeCase{"__", "xy", true},
        LikeCase{"%_", "x", true}, LikeCase{"%_", "", false},
        LikeCase{"a%%b", "ab", true}, LikeCase{"a%%b", "aXYb", true},
        LikeCase{"%ab%ab%", "abab", true}, LikeCase{"%ab%ab%", "aab", false},
        LikeCase{"x%yz", "xAByz", true}, LikeCase{"x%yz", "xyzq", false}));

// Reference matcher: classic recursive definition.
bool RefLike(const std::string& p, size_t pi, const std::string& s, size_t si) {
  if (pi == p.size()) return si == s.size();
  if (p[pi] == '%') {
    for (size_t k = si; k <= s.size(); ++k) {
      if (RefLike(p, pi + 1, s, k)) return true;
    }
    return false;
  }
  if (si == s.size()) return false;
  if (p[pi] == '_' || p[pi] == s[si]) return RefLike(p, pi + 1, s, si + 1);
  return false;
}

TEST(LikeMatcherTest, PropertyAgainstReference) {
  Rng rng(99);
  const char alphabet[] = "ab%_";
  for (int round = 0; round < 3000; ++round) {
    std::string pattern, input;
    const int plen = static_cast<int>(rng.Uniform(0, 6));
    const int slen = static_cast<int>(rng.Uniform(0, 8));
    for (int i = 0; i < plen; ++i) pattern += alphabet[rng.Next() % 4];
    for (int i = 0; i < slen; ++i) input += alphabet[rng.Next() % 2];  // a/b only
    LikeMatcher m(pattern);
    EXPECT_EQ(m.Matches(input), RefLike(pattern, 0, input, 0))
        << "pattern=" << pattern << " input=" << input;
  }
}

TEST(LikeMatcherTest, CaseInsensitive) {
  LikeMatcher m("%HeLLo%", /*case_insensitive=*/true);
  EXPECT_TRUE(m.Matches("say hello world"));
  EXPECT_TRUE(m.Matches("HELLO"));
  EXPECT_FALSE(m.Matches("helo"));
}

// --- predicate analysis ------------------------------------------------------------

TEST(PredicateTest, EqualityExtraction) {
  auto pred = Expr::And({Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(5))),
                         Expr::Eq(Expr::Literal(Value::Str("x")), Expr::Column(1))});
  const AnalyzedPredicate ap = AnalyzePredicate(pred);
  ASSERT_EQ(ap.equalities.size(), 2u);
  EXPECT_EQ(ap.equalities[0].column, 0u);
  EXPECT_EQ(ap.equalities[0].value.AsInt(), 5);
  EXPECT_EQ(ap.equalities[1].column, 1u);
  EXPECT_TRUE(ap.ranges.empty());
  EXPECT_TRUE(ap.residual.empty());
}

TEST(PredicateTest, RangeMerging) {
  // 3 < c0 AND c0 <= 10 merges into one range.
  auto pred = Expr::And({Expr::Gt(Expr::Column(0), Expr::Literal(Value::Int(3))),
                         Expr::Le(Expr::Column(0), Expr::Literal(Value::Int(10)))});
  const AnalyzedPredicate ap = AnalyzePredicate(pred);
  ASSERT_EQ(ap.ranges.size(), 1u);
  const RangeConstraint& r = ap.ranges[0];
  EXPECT_FALSE(r.Matches(Value::Int(3)));
  EXPECT_TRUE(r.Matches(Value::Int(4)));
  EXPECT_TRUE(r.Matches(Value::Int(10)));
  EXPECT_FALSE(r.Matches(Value::Int(11)));
}

TEST(PredicateTest, FlippedLiteralSide) {
  // 5 > c0 means c0 < 5.
  auto pred = Expr::Gt(Expr::Literal(Value::Int(5)), Expr::Column(0));
  const AnalyzedPredicate ap = AnalyzePredicate(pred);
  ASSERT_EQ(ap.ranges.size(), 1u);
  EXPECT_TRUE(ap.ranges[0].Matches(Value::Int(4)));
  EXPECT_FALSE(ap.ranges[0].Matches(Value::Int(5)));
}

TEST(PredicateTest, ResidualCapturesNonIndexable) {
  auto pred = Expr::And({Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(5))),
                         Expr::Like(Expr::Column(1), "%x%"),
                         Expr::Ne(Expr::Column(2), Expr::Literal(Value::Int(0)))});
  const AnalyzedPredicate ap = AnalyzePredicate(pred);
  EXPECT_EQ(ap.equalities.size(), 1u);
  EXPECT_EQ(ap.residual.size(), 2u);  // LIKE and !=
  ASSERT_NE(ap.ResidualExpr(), nullptr);
}

TEST(PredicateTest, NullPredicateIsTrivial) {
  const AnalyzedPredicate ap = AnalyzePredicate(nullptr);
  EXPECT_TRUE(ap.IsTrivial());
  EXPECT_EQ(ap.ResidualExpr(), nullptr);
}

TEST(PredicateTest, OrIsResidual) {
  auto pred = Expr::Or({Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(1))),
                        Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(2)))});
  const AnalyzedPredicate ap = AnalyzePredicate(pred);
  EXPECT_TRUE(ap.equalities.empty());
  EXPECT_EQ(ap.residual.size(), 1u);
}

TEST(PredicateTest, CollectConjunctsFlattensNesting) {
  auto pred = Expr::And(
      {Expr::And({Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(1))),
                  Expr::Eq(Expr::Column(1), Expr::Literal(Value::Int(2)))}),
       Expr::Eq(Expr::Column(2), Expr::Literal(Value::Int(3)))});
  std::vector<ExprPtr> out;
  CollectConjuncts(pred, &out);
  EXPECT_EQ(out.size(), 3u);
}

}  // namespace
}  // namespace shareddb
