// Tests for the expression engine: evaluation, three-valued logic, LIKE
// matching (including a property sweep against a reference matcher), binding,
// and predicate analysis.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "expr/expression.h"
#include "expr/like_matcher.h"
#include "expr/predicate.h"

namespace shareddb {
namespace {

const std::vector<Value> kNoParams;

Tuple Row(int64_t id, const std::string& name, double price) {
  return {Value::Int(id), Value::Str(name), Value::Double(price)};
}

TEST(ExprTest, LiteralsAndColumns) {
  const Tuple t = Row(7, "abc", 1.5);
  EXPECT_EQ(Expr::Literal(Value::Int(5))->Evaluate(t, kNoParams).AsInt(), 5);
  EXPECT_EQ(Expr::Column(0)->Evaluate(t, kNoParams).AsInt(), 7);
  EXPECT_EQ(Expr::Column(1)->Evaluate(t, kNoParams).AsString(), "abc");
}

TEST(ExprTest, Comparisons) {
  const Tuple t = Row(7, "abc", 1.5);
  auto col0 = Expr::Column(0);
  EXPECT_TRUE(Expr::Eq(col0, Expr::Literal(Value::Int(7)))->EvalBool(t, kNoParams));
  EXPECT_FALSE(Expr::Ne(col0, Expr::Literal(Value::Int(7)))->EvalBool(t, kNoParams));
  EXPECT_TRUE(Expr::Lt(col0, Expr::Literal(Value::Int(8)))->EvalBool(t, kNoParams));
  EXPECT_TRUE(Expr::Ge(col0, Expr::Literal(Value::Int(7)))->EvalBool(t, kNoParams));
  EXPECT_FALSE(Expr::Gt(col0, Expr::Literal(Value::Int(7)))->EvalBool(t, kNoParams));
}

TEST(ExprTest, ParamsAndBind) {
  const Tuple t = Row(7, "abc", 1.5);
  auto e = Expr::Eq(Expr::Column(0), Expr::Param(0));
  EXPECT_TRUE(e->EvalBool(t, {Value::Int(7)}));
  EXPECT_FALSE(e->EvalBool(t, {Value::Int(8)}));
  // Binding produces a parameter-free tree with the same semantics.
  auto bound = e->Bind({Value::Int(7)});
  EXPECT_TRUE(bound->EvalBool(t, kNoParams));
}

TEST(ExprTest, AndOrNot) {
  const Tuple t = Row(7, "abc", 1.5);
  auto yes = Expr::Literal(Value::Int(1));
  auto no = Expr::Literal(Value::Int(0));
  EXPECT_TRUE(Expr::And({yes, yes})->EvalBool(t, kNoParams));
  EXPECT_FALSE(Expr::And({yes, no})->EvalBool(t, kNoParams));
  EXPECT_TRUE(Expr::Or({no, yes})->EvalBool(t, kNoParams));
  EXPECT_FALSE(Expr::Or({no, no})->EvalBool(t, kNoParams));
  EXPECT_TRUE(Expr::Not(no)->EvalBool(t, kNoParams));
}

TEST(ExprTest, ThreeValuedLogic) {
  const Tuple t{Value::Null(), Value::Int(1)};
  auto null_cmp = Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(5)));
  // NULL = 5 evaluates to NULL, which is falsy.
  EXPECT_TRUE(null_cmp->Evaluate(t, kNoParams).is_null());
  EXPECT_FALSE(null_cmp->EvalBool(t, kNoParams));
  // NULL OR TRUE = TRUE; NULL AND TRUE = NULL.
  auto yes = Expr::Literal(Value::Int(1));
  EXPECT_TRUE(Expr::Or({null_cmp, yes})->EvalBool(t, kNoParams));
  EXPECT_TRUE(Expr::And({null_cmp, yes})->Evaluate(t, kNoParams).is_null());
  // IS NULL.
  EXPECT_TRUE(Expr::IsNull(Expr::Column(0))->EvalBool(t, kNoParams));
  EXPECT_FALSE(Expr::IsNull(Expr::Column(1))->EvalBool(t, kNoParams));
}

TEST(ExprTest, InAndBetween) {
  const Tuple t = Row(7, "abc", 1.5);
  auto in = Expr::In(Expr::Column(0), {Expr::Literal(Value::Int(5)),
                                       Expr::Literal(Value::Int(7))});
  EXPECT_TRUE(in->EvalBool(t, kNoParams));
  auto not_in = Expr::In(Expr::Column(0), {Expr::Literal(Value::Int(5))});
  EXPECT_FALSE(not_in->EvalBool(t, kNoParams));
  auto between = Expr::Between(Expr::Column(2), Expr::Literal(Value::Double(1.0)),
                               Expr::Literal(Value::Double(2.0)));
  EXPECT_TRUE(between->EvalBool(t, kNoParams));
}

TEST(ExprTest, LikeOnColumn) {
  const Tuple t = Row(7, "the quick brown fox", 1.5);
  EXPECT_TRUE(Expr::Like(Expr::Column(1), "%quick%")->EvalBool(t, kNoParams));
  EXPECT_FALSE(Expr::Like(Expr::Column(1), "%quack%")->EvalBool(t, kNoParams));
  EXPECT_TRUE(Expr::Like(Expr::Column(1), "the%fox")->EvalBool(t, kNoParams));
  // Parameterized pattern, bound later.
  auto e = Expr::LikeParam(Expr::Column(1), 0);
  EXPECT_TRUE(e->EvalBool(t, {Value::Str("%brown%")}));
  auto bound = e->Bind({Value::Str("%brown%")});
  EXPECT_TRUE(bound->EvalBool(t, kNoParams));
}

TEST(ExprTest, RemapAndOffsetColumns) {
  const Tuple joined{Value::Int(1), Value::Int(2), Value::Int(3)};
  auto e = Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(3)));
  auto shifted = e->OffsetColumns(2);
  EXPECT_TRUE(shifted->EvalBool(joined, kNoParams));
  std::vector<int> mapping{2, -1, -1};
  auto remapped = e->RemapColumns(mapping);
  EXPECT_TRUE(remapped->EvalBool(joined, kNoParams));
}

TEST(ExprTest, ToStringSmoke) {
  auto e = Expr::And({Expr::Eq(Expr::Column(0), Expr::Param(0)),
                      Expr::Like(Expr::Column(1), "%x%")});
  const std::string s = e->ToString();
  EXPECT_NE(s.find("AND"), std::string::npos);
  EXPECT_NE(s.find("LIKE"), std::string::npos);
}

// --- LikeMatcher -----------------------------------------------------------------

struct LikeCase {
  const char* pattern;
  const char* input;
  bool expect;
};

class LikeMatcherTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeMatcherTest, Matches) {
  const LikeCase& c = GetParam();
  LikeMatcher m(c.pattern);
  EXPECT_EQ(m.Matches(c.input), c.expect)
      << "pattern=" << c.pattern << " input=" << c.input;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LikeMatcherTest,
    ::testing::Values(
        LikeCase{"abc", "abc", true}, LikeCase{"abc", "abd", false},
        LikeCase{"abc", "ab", false}, LikeCase{"abc", "abcd", false},
        LikeCase{"%", "", true}, LikeCase{"%", "anything", true},
        LikeCase{"", "", true}, LikeCase{"", "x", false},
        LikeCase{"a%", "a", true}, LikeCase{"a%", "abc", true},
        LikeCase{"a%", "ba", false}, LikeCase{"%a", "a", true},
        LikeCase{"%a", "bca", true}, LikeCase{"%a", "ab", false},
        LikeCase{"%abc%", "xxabcyy", true}, LikeCase{"%abc%", "xxbcyy", false},
        LikeCase{"a%b%c", "aXbYc", true}, LikeCase{"a%b%c", "acb", false},
        LikeCase{"a_c", "abc", true}, LikeCase{"a_c", "ac", false},
        LikeCase{"a_c", "abbc", false}, LikeCase{"_", "x", true},
        LikeCase{"_", "", false}, LikeCase{"__", "xy", true},
        LikeCase{"%_", "x", true}, LikeCase{"%_", "", false},
        LikeCase{"a%%b", "ab", true}, LikeCase{"a%%b", "aXYb", true},
        LikeCase{"%ab%ab%", "abab", true}, LikeCase{"%ab%ab%", "aab", false},
        LikeCase{"x%yz", "xAByz", true}, LikeCase{"x%yz", "xyzq", false}));

// Reference matcher: classic recursive definition.
bool RefLike(const std::string& p, size_t pi, const std::string& s, size_t si) {
  if (pi == p.size()) return si == s.size();
  if (p[pi] == '%') {
    for (size_t k = si; k <= s.size(); ++k) {
      if (RefLike(p, pi + 1, s, k)) return true;
    }
    return false;
  }
  if (si == s.size()) return false;
  if (p[pi] == '_' || p[pi] == s[si]) return RefLike(p, pi + 1, s, si + 1);
  return false;
}

TEST(LikeMatcherTest, PropertyAgainstReference) {
  Rng rng(99);
  const char alphabet[] = "ab%_";
  for (int round = 0; round < 3000; ++round) {
    std::string pattern, input;
    const int plen = static_cast<int>(rng.Uniform(0, 6));
    const int slen = static_cast<int>(rng.Uniform(0, 8));
    for (int i = 0; i < plen; ++i) pattern += alphabet[rng.Next() % 4];
    for (int i = 0; i < slen; ++i) input += alphabet[rng.Next() % 2];  // a/b only
    LikeMatcher m(pattern);
    EXPECT_EQ(m.Matches(input), RefLike(pattern, 0, input, 0))
        << "pattern=" << pattern << " input=" << input;
  }
}

TEST(LikeMatcherTest, CaseInsensitive) {
  LikeMatcher m("%HeLLo%", /*case_insensitive=*/true);
  EXPECT_TRUE(m.Matches("say hello world"));
  EXPECT_TRUE(m.Matches("HELLO"));
  EXPECT_FALSE(m.Matches("helo"));
}

// --- predicate analysis ------------------------------------------------------------

TEST(PredicateTest, EqualityExtraction) {
  auto pred = Expr::And({Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(5))),
                         Expr::Eq(Expr::Literal(Value::Str("x")), Expr::Column(1))});
  const AnalyzedPredicate ap = AnalyzePredicate(pred);
  ASSERT_EQ(ap.equalities.size(), 2u);
  EXPECT_EQ(ap.equalities[0].column, 0u);
  EXPECT_EQ(ap.equalities[0].value.AsInt(), 5);
  EXPECT_EQ(ap.equalities[1].column, 1u);
  EXPECT_TRUE(ap.ranges.empty());
  EXPECT_TRUE(ap.residual.empty());
}

TEST(PredicateTest, RangeMerging) {
  // 3 < c0 AND c0 <= 10 merges into one range.
  auto pred = Expr::And({Expr::Gt(Expr::Column(0), Expr::Literal(Value::Int(3))),
                         Expr::Le(Expr::Column(0), Expr::Literal(Value::Int(10)))});
  const AnalyzedPredicate ap = AnalyzePredicate(pred);
  ASSERT_EQ(ap.ranges.size(), 1u);
  const RangeConstraint& r = ap.ranges[0];
  EXPECT_FALSE(r.Matches(Value::Int(3)));
  EXPECT_TRUE(r.Matches(Value::Int(4)));
  EXPECT_TRUE(r.Matches(Value::Int(10)));
  EXPECT_FALSE(r.Matches(Value::Int(11)));
}

TEST(PredicateTest, FlippedLiteralSide) {
  // 5 > c0 means c0 < 5.
  auto pred = Expr::Gt(Expr::Literal(Value::Int(5)), Expr::Column(0));
  const AnalyzedPredicate ap = AnalyzePredicate(pred);
  ASSERT_EQ(ap.ranges.size(), 1u);
  EXPECT_TRUE(ap.ranges[0].Matches(Value::Int(4)));
  EXPECT_FALSE(ap.ranges[0].Matches(Value::Int(5)));
}

TEST(PredicateTest, ResidualCapturesNonIndexable) {
  auto pred = Expr::And({Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(5))),
                         Expr::Like(Expr::Column(1), "%x%"),
                         Expr::Ne(Expr::Column(2), Expr::Literal(Value::Int(0)))});
  const AnalyzedPredicate ap = AnalyzePredicate(pred);
  EXPECT_EQ(ap.equalities.size(), 1u);
  EXPECT_EQ(ap.residual.size(), 2u);  // LIKE and !=
  ASSERT_NE(ap.ResidualExpr(), nullptr);
}

TEST(PredicateTest, NullPredicateIsTrivial) {
  const AnalyzedPredicate ap = AnalyzePredicate(nullptr);
  EXPECT_TRUE(ap.IsTrivial());
  EXPECT_EQ(ap.ResidualExpr(), nullptr);
}

TEST(PredicateTest, OrIsResidual) {
  auto pred = Expr::Or({Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(1))),
                        Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(2)))});
  const AnalyzedPredicate ap = AnalyzePredicate(pred);
  EXPECT_TRUE(ap.equalities.empty());
  EXPECT_EQ(ap.residual.size(), 1u);
}

// --- structural identity ------------------------------------------------------

// Random expression template over columns 0..2 and params 0..3, covering
// every ExprKind (including kLike via literal and parameterized patterns,
// and kIn with mixed literal/param elements).
ExprPtr RandomTemplate(Rng* rng, int depth) {
  auto leaf_value = [&]() -> ExprPtr {
    switch (rng->Uniform(0, 3)) {
      case 0: return Expr::Column(rng->Uniform(0, 2));
      case 1: return Expr::Param(rng->Uniform(0, 3));
      case 2: return Expr::Literal(Value::Int(rng->Uniform(0, 9)));
      default: return Expr::Literal(Value::Double(rng->Uniform(0, 9) * 0.5));
    }
  };
  if (depth <= 0) {
    return Expr::Compare(static_cast<CompareOp>(rng->Uniform(0, 5)), leaf_value(),
                         leaf_value());
  }
  switch (rng->Uniform(0, 8)) {
    case 0:
      return Expr::Compare(static_cast<CompareOp>(rng->Uniform(0, 5)),
                           leaf_value(), leaf_value());
    case 1:
      return Expr::Compare(
          CompareOp::kEq,
          Expr::Arith(static_cast<ArithOp>(rng->Uniform(0, 3)), leaf_value(),
                      leaf_value()),
          leaf_value());
    case 2: {
      std::vector<ExprPtr> cs;
      const int n = static_cast<int>(rng->Uniform(2, 3));
      for (int i = 0; i < n; ++i) cs.push_back(RandomTemplate(rng, depth - 1));
      return rng->Bernoulli(0.5) ? Expr::And(std::move(cs))
                                 : Expr::Or(std::move(cs));
    }
    case 3:
      return Expr::Not(RandomTemplate(rng, depth - 1));
    case 4:
      return Expr::IsNull(leaf_value());
    case 5: {
      std::vector<ExprPtr> elems;
      const int n = static_cast<int>(rng->Uniform(1, 4));
      for (int i = 0; i < n; ++i) elems.push_back(leaf_value());
      return Expr::In(Expr::Column(rng->Uniform(0, 2)), std::move(elems));
    }
    case 6:
      return Expr::Like(Expr::Column(1),
                        rng->Bernoulli(0.5) ? "pre%" : "%mid%",
                        rng->Bernoulli(0.3));
    default:
      return Expr::LikeParam(Expr::Column(1), rng->Uniform(0, 3),
                             rng->Bernoulli(0.3));
  }
}

std::vector<Value> RandomParams(Rng* rng) {
  std::vector<Value> params;
  for (int i = 0; i < 4; ++i) {
    switch (rng->Uniform(0, 3)) {
      case 0: params.push_back(Value::Int(rng->Uniform(0, 99))); break;
      case 1: params.push_back(Value::Double(rng->Uniform(0, 99) * 0.25)); break;
      case 2: params.push_back(Value::Str("p%" + std::to_string(rng->Uniform(0, 9)))); break;
      default: params.push_back(Value::Null()); break;
    }
  }
  return params;
}

TEST(ExprIdentityProperty, StructuralEqualityMatchesFingerprint) {
  Rng rng(4242);
  for (int round = 0; round < 2000; ++round) {
    Rng clone_rng = rng;  // same stream => structurally identical rebuild
    ExprPtr a = RandomTemplate(&rng, 3);
    ExprPtr a2 = RandomTemplate(&clone_rng, 3);
    // A rebuilt tree (all-new nodes) is structurally equal with an equal
    // fingerprint.
    ASSERT_TRUE(a->StructurallyEquals(*a2)) << a->ToString();
    ASSERT_EQ(a->Fingerprint(), a2->Fingerprint()) << a->ToString();

    // An independently drawn tree: equal structure <=> equal fingerprint
    // (modulo collisions, which the 64-bit hash makes vanishingly unlikely
    // over this corpus — a mismatch here means the hash lost information).
    ExprPtr b = RandomTemplate(&rng, 3);
    if (a->StructurallyEquals(*b)) {
      EXPECT_EQ(a->Fingerprint(), b->Fingerprint())
          << a->ToString() << " vs " << b->ToString();
    }
    if (a->Fingerprint() != b->Fingerprint()) {
      EXPECT_FALSE(a->StructurallyEquals(*b))
          << a->ToString() << " vs " << b->ToString();
    }
  }
}

TEST(ExprIdentityProperty, BindPreservesTemplateFingerprint) {
  Rng rng(777);
  for (int round = 0; round < 2000; ++round) {
    ExprPtr tmpl = RandomTemplate(&rng, 3);
    const ExprPtr b1 = tmpl->Bind(RandomParams(&rng));
    const ExprPtr b2 = tmpl->Bind(RandomParams(&rng));
    // Every binding keeps the template's fingerprint and structure: the
    // bound literals remember their slots.
    EXPECT_EQ(b1->Fingerprint(), tmpl->Fingerprint()) << tmpl->ToString();
    EXPECT_EQ(b2->Fingerprint(), tmpl->Fingerprint()) << tmpl->ToString();
    EXPECT_TRUE(b1->StructurallyEquals(*tmpl)) << tmpl->ToString();
    EXPECT_TRUE(b1->StructurallyEquals(*b2)) << tmpl->ToString();
    // Column rewrites preserve slots, so a remapped binding still matches
    // the identically remapped template.
    const ExprPtr shifted_tmpl = tmpl->OffsetColumns(2);
    const ExprPtr shifted_bound = b1->OffsetColumns(2);
    EXPECT_EQ(shifted_bound->Fingerprint(), shifted_tmpl->Fingerprint());
    EXPECT_TRUE(shifted_bound->StructurallyEquals(*shifted_tmpl));
  }
}

TEST(ExprIdentity, PlainLiteralsCompareByValue) {
  // Non-param literals are part of the structure: different constants are
  // different templates.
  auto a = Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(1)));
  auto b = Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(2)));
  EXPECT_FALSE(a->StructurallyEquals(*b));
  EXPECT_NE(a->Fingerprint(), b->Fingerprint());
  // Numerically equal INT/DOUBLE literals are the same structure (Compare
  // and Hash agree on cross-type numeric equality).
  auto c = Expr::Eq(Expr::Column(0), Expr::Literal(Value::Double(1.0)));
  EXPECT_TRUE(a->StructurallyEquals(*c));
  EXPECT_EQ(a->Fingerprint(), c->Fingerprint());
  // A kParam node equals a literal bound from that slot.
  auto tmpl = Expr::Eq(Expr::Column(0), Expr::Param(0));
  auto bound = tmpl->Bind({Value::Int(42)});
  EXPECT_TRUE(tmpl->StructurallyEquals(*bound));
  EXPECT_EQ(bound->children()[1]->bound_param_slot(), 0);
}

TEST(PredicateTest, InListExtraction) {
  auto tmpl = Expr::In(Expr::Column(2), {Expr::Literal(Value::Int(4)),
                                         Expr::Param(0), Expr::Param(1)});
  const AnalyzedPredicate ap = AnalyzePredicate(
      tmpl->Bind({Value::Int(7), Value::Int(9)}));
  ASSERT_EQ(ap.ins.size(), 1u);
  EXPECT_TRUE(ap.equalities.empty());
  EXPECT_TRUE(ap.residual.empty());
  EXPECT_EQ(ap.ins[0].column, 2u);
  ASSERT_EQ(ap.ins[0].values.size(), 3u);
  EXPECT_EQ(ap.ins[0].values[1].AsInt(), 7);
  EXPECT_EQ(ap.ins[0].param_slots, (std::vector<int>{-1, 0, 1}));
  EXPECT_TRUE(ap.rebind_safe);
  // A non-literal element keeps IN as a residual conjunct.
  auto dynamic_in = Expr::In(Expr::Column(2), {Expr::Column(0)});
  const AnalyzedPredicate ap2 = AnalyzePredicate(dynamic_in);
  EXPECT_TRUE(ap2.ins.empty());
  EXPECT_EQ(ap2.residual.size(), 1u);
}

TEST(PredicateTest, ValueDependentShapesAreNotRebindSafe) {
  // Competing parameterized bounds on one range side.
  auto competing = Expr::And({Expr::Gt(Expr::Column(0), Expr::Param(0)),
                              Expr::Gt(Expr::Column(0), Expr::Param(1))});
  EXPECT_FALSE(AnalyzePredicate(competing->Bind({Value::Int(1), Value::Int(5)}))
                   .rebind_safe);
  // Two fixed literals competing is fine — the winner can never change.
  auto fixed = Expr::And(
      {Expr::Gt(Expr::Column(0), Expr::Literal(Value::Int(1))),
       Expr::Gt(Expr::Column(0), Expr::Literal(Value::Int(5)))});
  EXPECT_TRUE(AnalyzePredicate(fixed).rebind_safe);
  // Bounds on OPPOSITE sides never compete.
  auto between = Expr::And({Expr::Ge(Expr::Column(0), Expr::Param(0)),
                            Expr::Le(Expr::Column(0), Expr::Param(1))});
  const AnalyzedPredicate ap =
      AnalyzePredicate(between->Bind({Value::Int(1), Value::Int(5)}));
  EXPECT_TRUE(ap.rebind_safe);
  ASSERT_EQ(ap.ranges.size(), 1u);
  EXPECT_EQ(ap.ranges[0].lo_param_slot, 0);
  EXPECT_EQ(ap.ranges[0].hi_param_slot, 1);
  // An anchored LIKE's derived bounds merging over a PARAMETERIZED bound on
  // the same column: the merge winner depends on the bound value, so a
  // rebind must not patch it in place. (Regression: col >= ?0 AND col LIKE
  // 'm%' bound with "a" compiles lo="m"; rebinding ?0 to "z" must rebuild,
  // not keep lo="m".)
  auto like_vs_param =
      Expr::And({Expr::Ge(Expr::Column(0), Expr::Param(0)),
                 Expr::Like(Expr::Column(0), "m%")});
  EXPECT_FALSE(
      AnalyzePredicate(like_vs_param->Bind({Value::Str("a")})).rebind_safe);
  // The same LIKE merging over FIXED bounds stays rebind-safe (nothing can
  // change between bindings).
  auto like_vs_fixed =
      Expr::And({Expr::Ge(Expr::Column(0), Expr::Literal(Value::Str("a"))),
                 Expr::Like(Expr::Column(0), "m%")});
  EXPECT_TRUE(AnalyzePredicate(like_vs_fixed).rebind_safe);
}

TEST(PredicateTest, CollectConjunctsFlattensNesting) {
  auto pred = Expr::And(
      {Expr::And({Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(1))),
                  Expr::Eq(Expr::Column(1), Expr::Literal(Value::Int(2)))}),
       Expr::Eq(Expr::Column(2), Expr::Literal(Value::Int(3)))});
  std::vector<ExprPtr> out;
  CollectConjuncts(pred, &out);
  EXPECT_EQ(out.size(), 3u);
}

}  // namespace
}  // namespace shareddb
