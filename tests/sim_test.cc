// Tests of the virtual-time evaluation substrate (DESIGN.md §3): cost
// model, LPT core packing, client model, and both load simulators.

#include <gtest/gtest.h>

#include "api/server.h"
#include "sim/baseline_sim.h"
#include "sim/shareddb_sim.h"
#include "tpcw/global_plan.h"

namespace shareddb {
namespace sim {
namespace {

tpcw::TpcwScale TinyScale() {
  tpcw::TpcwScale s;
  s.num_items = 300;
  s.num_ebs = 1;
  return s;
}

TEST(CostModel, NanosIsAdditiveInCounters) {
  CostModel cost;
  WorkStats a, b;
  a.rows_scanned = 10;
  a.hash_probes = 5;
  b.comparisons = 7;
  b.tuples_out = 3;
  WorkStats both = a;
  both.Add(b);
  EXPECT_DOUBLE_EQ(cost.Nanos(both), cost.Nanos(a) + cost.Nanos(b));
}

TEST(CostModel, ScaleKnobIsLinear) {
  CostModel cost;
  WorkStats w;
  w.rows_scanned = 1000;
  const double at_default = cost.Nanos(w);
  cost.scale = 2 * cost.scale;
  EXPECT_DOUBLE_EQ(cost.Nanos(w), 2 * at_default);
  EXPECT_GT(cost.StatementNanos(), 0);
}

TEST(LptMakespan, SingleCoreIsSum) {
  EXPECT_DOUBLE_EQ(LptMakespanSeconds({1.0, 2.0, 3.0}, 1), 6.0);
}

TEST(LptMakespan, EnoughCoresIsMax) {
  EXPECT_DOUBLE_EQ(LptMakespanSeconds({1.0, 2.0, 3.0}, 3), 3.0);
  EXPECT_DOUBLE_EQ(LptMakespanSeconds({1.0, 2.0, 3.0}, 10), 3.0);
}

TEST(LptMakespan, PacksGreedily) {
  // LPT on {3,3,2,2,2} with 2 cores: {3,2,2}=7 vs {3,2}=5 -> makespan 6:
  // 3+2+... actually LPT: sort desc 3,3,2,2,2; assign 3->c1, 3->c2, 2->c1(5),
  // 2->c2(5), 2->c1(7) -> makespan 7? No: ties broken to least-loaded: c1=3,
  // c2=3, then 2->c1=5, 2->c2=5, 2->c1=7. Makespan 7? Optimal is 6 (3+3 / 2+2+2).
  const double m = LptMakespanSeconds({3, 3, 2, 2, 2}, 2);
  EXPECT_GE(m, 6.0);          // cannot beat optimal
  EXPECT_LE(m, 6.0 * 4 / 3);  // LPT's approximation bound
}

TEST(LptMakespan, EmptyAndZero) {
  EXPECT_DOUBLE_EQ(LptMakespanSeconds({}, 4), 0.0);
  EXPECT_DOUBLE_EQ(LptMakespanSeconds({0.0, 0.0}, 2), 0.0);
}

TEST(ClientSim, MakeEbsAssignsDistinctCustomers) {
  ClientConfig cc;
  cc.num_ebs = 20;
  std::vector<EbRuntimeState> ebs = MakeEbs(cc, TinyScale());
  ASSERT_EQ(ebs.size(), 20u);
  std::set<int64_t> customers;
  for (const EbRuntimeState& s : ebs) customers.insert(s.eb.customer_id);
  EXPECT_GE(customers.size(), 10u);  // mostly distinct
}

TEST(ClientSim, BeginInteractionBuildsCalls) {
  ClientConfig cc;
  cc.num_ebs = 1;
  tpcw::IdAllocator ids;
  ids.next_order = 1000;
  ids.next_cart = 1000;
  ids.next_customer = 1000;
  ids.next_order_line = 1000;
  std::vector<EbRuntimeState> ebs = MakeEbs(cc, TinyScale());
  BeginInteraction(&ebs[0], cc, TinyScale(), &ids, /*now=*/5.0, /*warmup=*/1.0);
  EXPECT_FALSE(ebs[0].calls.empty());
  EXPECT_EQ(ebs[0].next_call, 0u);
  EXPECT_TRUE(ebs[0].counted);  // 5.0 > warmup
}

class SimFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = tpcw::MakeTpcwDatabase(TinyScale(), 5);
    engine_ = std::make_unique<Engine>(tpcw::BuildTpcwGlobalPlan(&db_->catalog));
  }
  std::unique_ptr<tpcw::TpcwDatabase> db_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(SimFixture, BatchSecondsRespectsHeartbeatFloor) {
  SharedDbSimOptions opt;
  opt.num_cores = 8;
  opt.min_heartbeat_seconds = 0.5;
  SharedDbLoadSim sim(engine_.get(), db_.get(), opt);
  BatchReport empty;
  EXPECT_DOUBLE_EQ(sim.BatchSeconds(empty), 0.5);
}

TEST_F(SimFixture, MoreCoresNeverSlower) {
  api::ServerOptions sopts;
  sopts.start_paused = true;
  api::Server server(engine_.get(), sopts);
  auto session = server.OpenSession();
  auto f = session->ExecuteAsync(
      "best_sellers", {Value::Int(1), Value::Int(tpcw::kTodayDay - 60)});
  const BatchReport report = server.StepBatch();
  double prev = 1e100;
  for (const int cores : {1, 2, 8, 32}) {
    SharedDbSimOptions opt;
    opt.num_cores = cores;
    opt.min_heartbeat_seconds = 0;
    SharedDbLoadSim sim(engine_.get(), db_.get(), opt);
    const double t = sim.BatchSeconds(report);
    EXPECT_LE(t, prev + 1e-12) << cores;
    prev = t;
  }
}

TEST_F(SimFixture, LightLoadTracksOfferedThroughput) {
  SharedDbSimOptions opt;
  opt.num_cores = 8;
  SharedDbLoadSim sim(engine_.get(), db_.get(), opt);
  ClientConfig cc;
  cc.num_ebs = 30;
  cc.duration_seconds = 60;
  cc.warmup_seconds = 10;
  const LoadResult r = sim.Run(cc);
  // 30 EBs / 7s think ≈ 4.3 interactions/s; all should succeed at this load.
  EXPECT_NEAR(r.Wips(), 4.3, 1.5);
  EXPECT_EQ(r.interactions_completed, r.interactions_successful);
}

TEST_F(SimFixture, PerWiBreakdownSumsToTotal) {
  SharedDbSimOptions opt;
  opt.num_cores = 8;
  SharedDbLoadSim sim(engine_.get(), db_.get(), opt);
  ClientConfig cc;
  cc.num_ebs = 20;
  cc.duration_seconds = 40;
  const LoadResult r = sim.Run(cc);
  uint64_t sum = 0;
  for (const auto& wi : r.per_wi) sum += wi.completed;
  EXPECT_EQ(sum, r.interactions_completed);
}

TEST_F(SimFixture, OnlyInteractionConfigIsHonored) {
  SharedDbSimOptions opt;
  opt.num_cores = 8;
  SharedDbLoadSim sim(engine_.get(), db_.get(), opt);
  ClientConfig cc;
  cc.num_ebs = 10;
  cc.duration_seconds = 30;
  cc.only_interaction = tpcw::WebInteraction::kProductDetail;
  const LoadResult r = sim.Run(cc);
  ASSERT_GT(r.interactions_completed, 0u);
  for (int i = 0; i < tpcw::kNumInteractions; ++i) {
    if (static_cast<tpcw::WebInteraction>(i) == tpcw::WebInteraction::kProductDetail)
      continue;
    EXPECT_EQ(r.per_wi[static_cast<size_t>(i)].completed, 0u);
  }
}

TEST(BaselineSim, EffectiveCoresHonorsProfileCap) {
  auto db = tpcw::MakeTpcwDatabase(TinyScale(), 5);
  baseline::BaselineEngine engine(&db->catalog, MySQLLikeProfile());
  tpcw::RegisterTpcwBaseline(&engine);
  BaselineSimOptions opt;
  opt.num_cores = 48;
  BaselineLoadSim sim(&engine, db.get(), opt);
  EXPECT_EQ(sim.EffectiveCores(), 12);  // MySQL does not scale beyond 12 [23]
}

TEST(BaselineSim, ServiceSecondsScalesWithProfileAndContention) {
  auto db = tpcw::MakeTpcwDatabase(TinyScale(), 5);
  baseline::BaselineEngine mysql(&db->catalog, MySQLLikeProfile());
  auto db2 = tpcw::MakeTpcwDatabase(TinyScale(), 5);
  baseline::BaselineEngine sysx(&db2->catalog, SystemXLikeProfile());
  BaselineSimOptions opt;
  BaselineLoadSim m(&mysql, db.get(), opt), s(&sysx, db2.get(), opt);
  WorkStats w;
  w.rows_scanned = 100000;
  EXPECT_GT(m.ServiceSeconds(w, 1), s.ServiceSeconds(w, 1));  // maturity gap
  EXPECT_GT(s.ServiceSeconds(w, 24), s.ServiceSeconds(w, 1));  // contention
}

TEST(BaselineSim, ClosedLoopSaturatesBelowOffered) {
  auto db = tpcw::MakeTpcwDatabase(TinyScale(), 5);
  baseline::BaselineEngine engine(&db->catalog, MySQLLikeProfile());
  tpcw::RegisterTpcwBaseline(&engine);
  BaselineSimOptions opt;
  opt.num_cores = 1;
  BaselineLoadSim sim(&engine, db.get(), opt);
  ClientConfig low, high;
  low.num_ebs = 20;
  low.duration_seconds = high.duration_seconds = 40;
  high.num_ebs = 4000;
  const double wips_low = sim.Run(low).Wips();
  const double wips_high = sim.Run(high).Wips();
  // Offered load grows 200x; successful throughput must not (1-core cap).
  EXPECT_LT(wips_high, wips_low * 100);
}

TEST(OpenLoop, LightStreamAloneMeetsItsRate) {
  auto db = tpcw::MakeTpcwDatabase(TinyScale(), 5);
  Engine engine(tpcw::BuildTpcwGlobalPlan(&db->catalog));
  SharedDbSimOptions opt;
  opt.num_cores = 8;
  SharedDbLoadSim sim(&engine, db.get(), opt);
  OpenLoopStream light;
  light.name = "product_detail";
  light.rate_per_second = 50;
  light.timeout_seconds = 3.0;
  light.make_call = [](Rng* rng) {
    return tpcw::StatementCall{"product_detail", {Value::Int(rng->Uniform(0, 299))}};
  };
  const OpenLoopResult r = sim.RunOpenLoop({light}, 30.0, 3);
  EXPECT_NEAR(r.ThroughputInTime(), 50.0, 10.0);
  EXPECT_NEAR(static_cast<double>(r.streams[0].issued) / 30.0, 50.0, 10.0);
}

}  // namespace
}  // namespace sim
}  // namespace shareddb
