// Baseline engine tests: volcano iterators, planner access-path selection,
// profile-driven join methods, and the differential check — the baseline and
// SharedDB must return identical result sets for the same logical statements.

#include <gtest/gtest.h>

#include <algorithm>

#include "api/server.h"
#include "baseline/engine.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/plan_builder.h"

namespace shareddb {
namespace {

using baseline::BaselineEngine;
using baseline::BaselineResult;

std::vector<Tuple> Sorted(std::vector<Tuple> v) {
  std::sort(v.begin(), v.end(), TupleLess);
  return v;
}

class BaselineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    items_ = catalog_.CreateTable(
        "items", Schema::Make({{"i_id", ValueType::kInt},
                               {"i_subject", ValueType::kInt},
                               {"i_title", ValueType::kString},
                               {"i_price", ValueType::kInt}}));
    authors_ = catalog_.CreateTable(
        "authors", Schema::Make({{"a_id", ValueType::kInt},
                                 {"a_name", ValueType::kString}}));
    items_->CreateIndex("items_id", "i_id");
    authors_->CreateIndex("authors_id", "a_id");
    Rng rng(7);
    for (int a = 0; a < 10; ++a) {
      authors_->Insert({Value::Int(a), Value::Str("author" + std::to_string(a))}, 1);
    }
    for (int i = 0; i < 100; ++i) {
      items_->Insert({Value::Int(i), Value::Int(i % 7),
                      Value::Str("title " + std::to_string(i % 13) + " x"),
                      Value::Int(static_cast<int>(rng.Uniform(1, 100)))},
                     1);
    }
    catalog_.snapshots().Reset(1);
  }

  // item_author(i_id): items ⋈ authors via a_id = i_id % 10 — emulated with
  // a direct key join on i_subject for simplicity of the fixture.
  logical::LogicalPtr ItemsBySubject() {
    return logical::Scan("items", Expr::Eq(Expr::Column(1), Expr::Param(0)));
  }

  Catalog catalog_;
  Table* items_;
  Table* authors_;
};

TEST_F(BaselineFixture, SeqScanAndFilter) {
  BaselineEngine eng(&catalog_, SystemXLikeProfile());
  eng.AddQuery("by_subject", ItemsBySubject());
  BaselineResult r = eng.ExecuteNamed("by_subject", {Value::Int(3)});
  EXPECT_FALSE(r.result.rows.empty());
  for (const Tuple& t : r.result.rows) EXPECT_EQ(t[1].AsInt(), 3);
  EXPECT_EQ(r.work.rows_scanned, 100u);  // no index on i_subject: full scan
}

TEST_F(BaselineFixture, IndexScanChosenForIndexedEquality) {
  BaselineEngine eng(&catalog_, SystemXLikeProfile());
  eng.AddQuery("by_id",
               logical::Scan("items", Expr::Eq(Expr::Column(0), Expr::Param(0))));
  BaselineResult r = eng.ExecuteNamed("by_id", {Value::Int(42)});
  ASSERT_EQ(r.result.rows.size(), 1u);
  EXPECT_EQ(r.result.rows[0][0].AsInt(), 42);
  EXPECT_EQ(r.work.index_lookups, 1u);
  EXPECT_LE(r.work.rows_scanned, 2u);  // fetched via index, not scanned
}

TEST_F(BaselineFixture, IndexRangeScanChosen) {
  BaselineEngine eng(&catalog_, SystemXLikeProfile());
  eng.AddQuery("id_range",
               logical::Scan("items",
                             Expr::And({Expr::Ge(Expr::Column(0), Expr::Param(0)),
                                        Expr::Lt(Expr::Column(0), Expr::Param(1))})));
  BaselineResult r = eng.ExecuteNamed("id_range", {Value::Int(10), Value::Int(20)});
  EXPECT_EQ(r.result.rows.size(), 10u);
  EXPECT_EQ(r.work.index_lookups, 1u);
}

TEST_F(BaselineFixture, MySQLProfileAvoidsHashJoin) {
  auto join = logical::HashJoin(logical::Scan("items"), logical::Scan("authors"),
                                "i_subject", "a_id", nullptr, "i", "a");
  BaselineEngine mysql(&catalog_, MySQLLikeProfile());
  BaselineEngine sysx(&catalog_, SystemXLikeProfile());
  mysql.AddQuery("j", join);
  sysx.AddQuery("j", join);
  BaselineResult rm = mysql.ExecuteNamed("j", {});
  BaselineResult rx = sysx.ExecuteNamed("j", {});
  // Same results...
  EXPECT_EQ(Sorted(rm.result.rows), Sorted(rx.result.rows));
  // ...different methods: SystemX builds a hash table, MySQL does not.
  EXPECT_GT(rx.work.hash_builds, 0u);
  EXPECT_EQ(rm.work.hash_builds, 0u);
  EXPECT_GT(rm.work.index_lookups, 0u);  // index NL join on authors_id
}

TEST_F(BaselineFixture, UpdatesAutoCommit) {
  BaselineEngine eng(&catalog_, SystemXLikeProfile());
  eng.AddUpdate("reprice", "items", {{"i_price", Expr::Param(1)}},
                Expr::Eq(Expr::Column(0), Expr::Param(0)));
  eng.AddQuery("by_id",
               logical::Scan("items", Expr::Eq(Expr::Column(0), Expr::Param(0))));
  BaselineResult up = eng.ExecuteNamed("reprice", {Value::Int(5), Value::Int(12345)});
  EXPECT_EQ(up.result.update_count, 1u);
  BaselineResult q = eng.ExecuteNamed("by_id", {Value::Int(5)});
  ASSERT_EQ(q.result.rows.size(), 1u);
  EXPECT_EQ(q.result.rows[0][3].AsInt(), 12345);
}

TEST_F(BaselineFixture, InsertAndDelete) {
  BaselineEngine eng(&catalog_, SystemXLikeProfile());
  eng.AddInsert("add", "items",
                {Expr::Param(0), Expr::Param(1), Expr::Param(2), Expr::Param(3)});
  eng.AddDelete("del", "items", Expr::Eq(Expr::Column(0), Expr::Param(0)));
  eng.AddQuery("by_id",
               logical::Scan("items", Expr::Eq(Expr::Column(0), Expr::Param(0))));
  eng.ExecuteNamed("add", {Value::Int(999), Value::Int(0), Value::Str("new"),
                           Value::Int(1)});
  EXPECT_EQ(eng.ExecuteNamed("by_id", {Value::Int(999)}).result.rows.size(), 1u);
  BaselineResult del = eng.ExecuteNamed("del", {Value::Int(999)});
  EXPECT_EQ(del.result.update_count, 1u);
  EXPECT_TRUE(eng.ExecuteNamed("by_id", {Value::Int(999)}).result.rows.empty());
}

// --- differential: baseline == SharedDB for identical statements ---------------

TEST_F(BaselineFixture, DifferentialAgainstSharedDB) {
  // Statements covering scan, join, sort, top-n, group-by, distinct.
  struct Case {
    std::string name;
    logical::LogicalPtr plan;
    std::vector<std::vector<Value>> param_sets;
  };
  auto scan_items = logical::Scan("items", Expr::Eq(Expr::Column(1), Expr::Param(0)));
  std::vector<Case> cases;
  cases.push_back({"subject", scan_items, {{Value::Int(0)}, {Value::Int(3)}}});
  cases.push_back(
      {"join",
       logical::HashJoin(
           logical::Scan("items", Expr::Eq(Expr::Column(1), Expr::Param(0))),
           logical::Scan("authors"), "i_subject", "a_id", nullptr, "i", "a"),
       {{Value::Int(1)}, {Value::Int(5)}}});
  cases.push_back(
      {"sorted",
       logical::Sort(logical::Scan("items", Expr::Lt(Expr::Column(3),
                                                     Expr::Param(0))),
                     {{"i_price", true}, {"i_id", true}}),
       {{Value::Int(30)}, {Value::Int(90)}}});
  cases.push_back(
      {"topn",
       logical::TopN(logical::Scan("items"), {{"i_price", false}, {"i_id", true}},
                     Expr::Param(0)),
       {{Value::Int(5)}, {Value::Int(20)}}});
  cases.push_back(
      {"grouped",
       logical::GroupBy(logical::Scan("items"), {"i_subject"},
                        {{AggSpec{AggFunc::kCount, -1, "cnt"}, ""},
                         {AggSpec{AggFunc::kAvg, -1, "avg_price"}, "i_price"}}),
       {{}}});
  cases.push_back(
      {"distinct_subjects",
       logical::Distinct(logical::Project(logical::Scan("items"), {"i_subject"})),
       {{}}});

  // Register everywhere.
  BaselineEngine base(&catalog_, SystemXLikeProfile());
  GlobalPlanBuilder builder(&catalog_);
  for (const Case& c : cases) {
    base.AddQuery(c.name, c.plan);
    builder.AddQuery(c.name, c.plan);
  }
  Engine shared(builder.Build());
  api::Server server(&shared);
  auto session = server.OpenSession();

  for (const Case& c : cases) {
    for (const auto& params : c.param_sets) {
      BaselineResult b = base.ExecuteNamed(c.name, params);
      ResultSet s = session->Execute(c.name, params);
      EXPECT_EQ(Sorted(b.result.rows), Sorted(s.rows))
          << "statement " << c.name;
      // Ordered operators must match exactly, not just as sets.
      if (c.name == "sorted" || c.name == "topn") {
        ASSERT_EQ(b.result.rows.size(), s.rows.size());
        for (size_t i = 0; i < s.rows.size(); ++i) {
          EXPECT_TRUE(TuplesEqual(b.result.rows[i], s.rows[i]))
              << c.name << " row " << i;
        }
      }
    }
  }
}

// Differential under concurrent batched execution with mixed parameters.
TEST_F(BaselineFixture, DifferentialBatchedManyQueries) {
  auto plan = logical::HashJoin(
      logical::Scan("items", Expr::Eq(Expr::Column(1), Expr::Param(0))),
      logical::Scan("authors"), "i_subject", "a_id", nullptr, "i", "a");
  BaselineEngine base(&catalog_, MySQLLikeProfile());
  base.AddQuery("j", plan);
  GlobalPlanBuilder builder(&catalog_);
  builder.AddQuery("j", plan);
  Engine shared(builder.Build());
  api::ServerOptions sopts;
  sopts.start_paused = true;
  api::Server server(&shared, sopts);
  auto session = server.OpenSession();

  std::vector<api::AsyncResult> futures;
  for (int s = 0; s < 7; ++s) {
    futures.push_back(session->ExecuteAsync("j", {Value::Int(s)}));
  }
  server.StepBatch();
  for (int s = 0; s < 7; ++s) {
    BaselineResult b = base.ExecuteNamed("j", {Value::Int(s)});
    ResultSet rs = futures[s].Get();
    EXPECT_EQ(Sorted(b.result.rows), Sorted(rs.rows)) << "subject " << s;
  }
}

}  // namespace
}  // namespace shareddb
