// sync.h primitives + the runtime lock-order registry.
//
// The death tests seed real ordering bugs (ABBA inversion, reentrant
// acquire) and expect the registry to abort with a diagnostic naming the
// cycle; the smoke tests force the detector on and drive the TaskPool and
// the api::Server to prove the shipped lock hierarchy is acyclic under
// load. Death tests use the "threadsafe" style because several spawn
// threads before dying.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "api/server.h"
#include "common/sync.h"
#include "core/plan_builder.h"
#include "runtime/task_pool.h"

// TSan detection (GCC defines __SANITIZE_THREAD__, Clang has the feature
// check): one test below must skip under it — see the comment there.
#if defined(__SANITIZE_THREAD__)
#define SDB_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SDB_TSAN_ACTIVE 1
#endif
#endif

namespace shareddb {
namespace {

// Forces the registry on for the test body and restores the prior state
// (Release builds default it off; Debug/forced-DCHECK builds default on).
class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = lockorder::SetEnabled(true);
    lockorder::ResetForTest();
  }
  void TearDown() override {
    lockorder::ResetForTest();
    (void)lockorder::SetEnabled(was_enabled_);
  }
  bool was_enabled_ = false;
};

TEST_F(LockOrderTest, MutexLockProvidesExclusion) {
  Mutex mu("test.counter");
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
}

TEST_F(LockOrderTest, CondVarWakesExplicitWhileLoop) {
  Mutex mu("test.cv");
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    EXPECT_TRUE(ready);
  }
  waker.join();
}

TEST_F(LockOrderTest, CondVarWaitForTimesOut) {
  Mutex mu("test.cv_timeout");
  CondVar cv;
  MutexLock lock(&mu);
  EXPECT_TRUE(cv.WaitFor(&mu, std::chrono::milliseconds(5)));  // timed out
}

TEST_F(LockOrderTest, ReleasableMutexLockRelocks) {
  Mutex mu("test.releasable");
  ReleasableMutexLock lock(&mu);
  lock.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
  lock.Relock();
}

TEST_F(LockOrderTest, ConsistentOrderRecordsEdgesQuietly) {
  Mutex a("test.a");
  Mutex b("test.b");
  const size_t before = lockorder::EdgeCount();
  for (int i = 0; i < 3; ++i) {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  // One a->b edge, recorded once; repeats hit the per-thread cache.
  EXPECT_EQ(lockorder::EdgeCount(), before + 1);
}

TEST_F(LockOrderTest, TryLockRecordsNoEdges) {
  Mutex a("test.a");
  Mutex b("test.b");
  const size_t before = lockorder::EdgeCount();
  MutexLock la(&a);
  ASSERT_TRUE(b.TryLock());  // non-blocking: cannot deadlock, no edge
  b.Unlock();
  EXPECT_EQ(lockorder::EdgeCount(), before);
}

TEST_F(LockOrderTest, DestroyedMutexAddressCanBeReused) {
#ifdef SDB_TSAN_ACTIVE
  // TSan's own lock-order detector keys mutexes by address and never
  // observes std::mutex destruction (the dtor is trivial — no
  // pthread_mutex_destroy), so the deliberate address-reuse pattern this
  // test validates trips TSan's known false positive. Our registry scrubs
  // dead nodes precisely to avoid that; the scrub itself is what this
  // test checks, in every non-TSan configuration.
  GTEST_SKIP() << "address-reuse pattern is a known TSan deadlock-detector "
                  "false positive";
#endif
  Mutex a("test.a");
  {
    Mutex tmp("test.tmp");
    MutexLock la(&a);
    MutexLock lt(&tmp);
  }  // tmp dies; its node and edges are scrubbed
  {
    // A fresh mutex (possibly at the recycled address) locked in the
    // opposite order must NOT trip a stale-edge false positive.
    Mutex other("test.other");
    MutexLock lo(&other);
    MutexLock la(&a);
  }
  SUCCEED();
}

using LockOrderDeathTest = LockOrderTest;

TEST_F(LockOrderDeathTest, AbbaInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        (void)lockorder::SetEnabled(true);
        lockorder::ResetForTest();
        Mutex a("death.a");
        Mutex b("death.b");
        // Thread 1 establishes a -> b; after it fully exits, thread 2
        // acquires b -> a. Sequential threads make the interleaving
        // deterministic: the registry flags the *order* inversion without
        // needing the actual deadlock to materialize.
        std::thread t1([&] {
          MutexLock la(&a);
          MutexLock lb(&b);
        });
        t1.join();
        std::thread t2([&] {
          MutexLock lb(&b);
          MutexLock la(&a);  // aborts here
        });
        t2.join();
      },
      "LOCK-ORDER INVERSION.*death\\.[ab]");
}

TEST_F(LockOrderDeathTest, ReentrantAcquireAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        (void)lockorder::SetEnabled(true);
        lockorder::ResetForTest();
        Mutex a("death.reentrant");
        a.Lock();
        a.Lock();  // self-deadlock; registry aborts before blocking
      },
      "REENTRANT LOCK.*death\\.reentrant");
}

TEST_F(LockOrderDeathTest, ThreeLockCycleAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        (void)lockorder::SetEnabled(true);
        lockorder::ResetForTest();
        Mutex a("death.a");
        Mutex b("death.b");
        Mutex c("death.c");
        {
          MutexLock la(&a);
          MutexLock lb(&b);
        }
        {
          MutexLock lb(&b);
          MutexLock lc(&c);
        }
        {
          MutexLock lc(&c);
          MutexLock la(&a);  // closes a -> b -> c -> a
        }
      },
      "LOCK-ORDER INVERSION");
}

// ---------------------------------------------------------------------------
// Registry-on smoke: the shipped lock hierarchy must stay acyclic under a
// real workload. Any inversion aborts the test binary, so reaching the
// assertions at all is the point.
// ---------------------------------------------------------------------------

TEST_F(LockOrderTest, TaskPoolHierarchyIsQuietUnderLoad) {
  TaskPool pool(4);
  std::atomic<int64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    TaskGroup group(&pool);
    for (int i = 0; i < 32; ++i) {
      group.Run([&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
    }
    group.Wait();
  }
  EXPECT_EQ(sum.load(), 20 * 32);
  // The pool's hierarchy is flat: worker deques and the idle latch are
  // never held together, so a quiet registry here means zero edges at all.
  EXPECT_EQ(lockorder::EdgeCount(), 0u);
}

TEST_F(LockOrderTest, ServerHierarchyIsQuietUnderLoad) {
  Catalog catalog;
  Table* users = catalog.CreateTable(
      "users", Schema::Make({{"user_id", ValueType::kInt},
                             {"account", ValueType::kInt}}));
  for (int i = 0; i < 32; ++i) {
    users->Insert({Value::Int(i), Value::Int(i * 10)}, 1);
  }
  catalog.snapshots().Reset(1);

  GlobalPlanBuilder b(&catalog);
  const SchemaPtr us = users->schema();
  b.AddQuery("user_by_id",
             logical::Scan("users", Expr::Eq(Expr::Column(*us, "user_id"),
                                             Expr::Param(0))));
  b.AddUpdate("credit", "users",
              {{"account", Expr::Add(Expr::Column(1), Expr::Param(1))}},
              Expr::Eq(Expr::Column(0), Expr::Param(0)));
  Engine engine(b.Build());
  api::Server server(&engine);

  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&server, c] {
      auto session = server.OpenSession();
      for (int i = 0; i < 10; ++i) {
        const int id = (c * 10 + i) % 32;
        const ResultSet rs = session->Execute("user_by_id", {Value::Int(id)});
        EXPECT_TRUE(rs.status.ok()) << rs.status.ToString();
        const ResultSet up =
            session->Execute("credit", {Value::Int(id), Value::Int(1)});
        EXPECT_TRUE(up.status.ok()) << up.status.ToString();
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Shutdown();  // exercises the shutdown_mu_ -> mu_ nesting
  EXPECT_GT(lockorder::EdgeCount(), 0u);
}

}  // namespace
}  // namespace shareddb
