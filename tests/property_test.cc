// Property-based differential tests: randomized inputs checked against
// straightforward reference implementations. These guard the invariants the
// optimized shared-execution code paths must preserve:
//   * QueryIdSet algebra (galloping intersect == reference intersect),
//   * anchored-LIKE range extraction == direct LIKE evaluation,
//   * PredicateIndex::Match == naive evaluate-every-query,
//   * shared GroupBy (per-set-class accumulation) == per-query grouping,
//   * shared TopN == per-query sort+limit.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"
#include "core/ops/group_by_op.h"
#include "core/ops/top_n_op.h"
#include "expr/predicate.h"
#include "storage/predicate_index.h"

namespace shareddb {
namespace {

std::vector<QueryId> RandomSortedIds(Rng* rng, int universe, double density) {
  std::vector<QueryId> ids;
  for (int i = 0; i < universe; ++i) {
    if (rng->Bernoulli(density)) ids.push_back(static_cast<QueryId>(i));
  }
  return ids;
}

// ---------------------------------------------------------------------------
// QueryIdSet algebra vs. std::set_* reference.
// ---------------------------------------------------------------------------

class QidSetProperty : public ::testing::TestWithParam<int> {};

TEST_P(QidSetProperty, IntersectMatchesReference) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    // Skewed densities exercise both the merge and the galloping path.
    const double da = rng.Bernoulli(0.5) ? 0.01 : 0.6;
    const double db = rng.Bernoulli(0.5) ? 0.01 : 0.6;
    const auto a = RandomSortedIds(&rng, 500, da);
    const auto b = RandomSortedIds(&rng, 500, db);
    std::vector<QueryId> expect;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expect));
    const QueryIdSet got =
        QueryIdSet::FromSorted(a).Intersect(QueryIdSet::FromSorted(b));
    EXPECT_EQ(got.ids(), expect);
    // Cost estimate is positive and never worse than the naive merge by much.
    EXPECT_GE(QueryIdSet::MergeCost(a.size(), b.size()), 1u);
    EXPECT_LE(QueryIdSet::MergeCost(a.size(), b.size()), a.size() + b.size() + 1);
  }
}

TEST_P(QidSetProperty, UnionAndContainsMatchReference) {
  Rng rng(GetParam() + 1000);
  for (int round = 0; round < 50; ++round) {
    const auto a = RandomSortedIds(&rng, 300, 0.1);
    const auto b = RandomSortedIds(&rng, 300, 0.1);
    std::vector<QueryId> expect;
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(expect));
    const QueryIdSet u = QueryIdSet::FromSorted(a).Union(QueryIdSet::FromSorted(b));
    EXPECT_EQ(u.ids(), expect);
    for (QueryId probe = 0; probe < 300; probe += 7) {
      const bool in = std::binary_search(expect.begin(), expect.end(), probe);
      EXPECT_EQ(u.Contains(probe), in) << probe;
    }
    EXPECT_EQ(QueryIdSet::FromSorted(a).Intersects(QueryIdSet::FromSorted(b)),
              !QueryIdSet::FromSorted(a).Intersect(QueryIdSet::FromSorted(b)).empty());
  }
}

TEST_P(QidSetProperty, HashValueIsContentBased) {
  Rng rng(GetParam() + 2000);
  const auto a = RandomSortedIds(&rng, 200, 0.2);
  const QueryIdSet s1 = QueryIdSet::FromSorted(a);
  const QueryIdSet s2 = QueryIdSet::FromSorted(a);
  EXPECT_EQ(s1.HashValue(), s2.HashValue());
  if (!a.empty()) {
    std::vector<QueryId> mutated = a;
    mutated.back() += 1;
    EXPECT_NE(s1.HashValue(), QueryIdSet::FromSorted(mutated).HashValue());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QidSetProperty, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Anchored LIKE -> range extraction.
// ---------------------------------------------------------------------------

class LikeRangeProperty : public ::testing::TestWithParam<int> {};

TEST_P(LikeRangeProperty, RangePlusResidualEqualsDirectLike) {
  Rng rng(GetParam());
  static const std::vector<Value> kNoParams;
  for (int round = 0; round < 60; ++round) {
    // Random anchored pattern over a small alphabet (forces collisions).
    std::string prefix;
    const int plen = static_cast<int>(rng.Uniform(1, 3));
    for (int i = 0; i < plen; ++i) {
      prefix.push_back(static_cast<char>('a' + rng.Uniform(0, 2)));
    }
    const std::string pattern =
        prefix + (rng.Bernoulli(0.5) ? "%" : "%x%");
    const ExprPtr like =
        Expr::Like(Expr::Column(0), pattern, /*case_insensitive=*/false);
    const AnalyzedPredicate pred = AnalyzePredicate(like);
    ASSERT_EQ(pred.ranges.size(), 1u) << pattern;

    for (int s = 0; s < 40; ++s) {
      std::string str;
      const int slen = static_cast<int>(rng.Uniform(0, 5));
      for (int i = 0; i < slen; ++i) {
        str.push_back(static_cast<char>('a' + rng.Uniform(0, 3)));
      }
      if (rng.Bernoulli(0.3)) str += "x";
      const Tuple row = {Value::Str(str)};
      const bool direct = like->EvalBool(row, kNoParams);
      bool via_index = pred.ranges[0].Matches(row[0]);
      for (const ExprPtr& r : pred.residual) {
        via_index = via_index && r->EvalBool(row, kNoParams);
      }
      EXPECT_EQ(via_index, direct) << "pattern='" << pattern << "' str='" << str
                                   << "'";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LikeRangeProperty, ::testing::Values(10, 11, 12));

// ---------------------------------------------------------------------------
// PredicateIndex::Match vs. naive per-query evaluation.
// ---------------------------------------------------------------------------

class PredicateIndexProperty : public ::testing::TestWithParam<int> {};

TEST_P(PredicateIndexProperty, MatchEqualsNaiveEvaluation) {
  Rng rng(GetParam());
  static const std::vector<Value> kNoParams;
  // Mix of predicate shapes: eq, range, anchored LIKE (range group),
  // residual-only, and match-all.
  std::vector<ScanQuerySpec> specs;
  for (QueryId id = 0; id < 60; ++id) {
    ExprPtr pred;
    switch (rng.Uniform(0, 4)) {
      case 0:
        pred = Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(rng.Uniform(0, 9))));
        break;
      case 1:
        pred = Expr::Gt(Expr::Column(1), Expr::Literal(Value::Int(rng.Uniform(0, 50))));
        break;
      case 2:
        pred = Expr::Like(Expr::Column(2),
                          std::string(1, static_cast<char>('a' + rng.Uniform(0, 2))) +
                              "%",
                          false);
        break;
      case 3:
        // Residual-only: disjunction is not indexable.
        pred = Expr::Or({Expr::Eq(Expr::Column(0),
                                  Expr::Literal(Value::Int(rng.Uniform(0, 9)))),
                         Expr::Lt(Expr::Column(1),
                                  Expr::Literal(Value::Int(rng.Uniform(0, 20))))});
        break;
      default:
        pred = nullptr;  // match-all
        break;
    }
    specs.push_back(ScanQuerySpec{id, pred});
  }
  const PredicateIndex index(specs);

  for (int r = 0; r < 200; ++r) {
    const Tuple row = {Value::Int(rng.Uniform(0, 9)), Value::Int(rng.Uniform(0, 99)),
                       Value::Str(std::string(1, static_cast<char>(
                                                    'a' + rng.Uniform(0, 3))) +
                                  "zz")};
    QueryIdSet got;
    index.Match(row, &got, nullptr);
    std::vector<QueryId> expect;
    for (const ScanQuerySpec& q : specs) {
      if (q.predicate == nullptr || q.predicate->EvalBool(row, kNoParams)) {
        expect.push_back(q.id);
      }
    }
    EXPECT_EQ(got.ids(), expect) << "row " << TupleToString(row);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateIndexProperty,
                         ::testing::Values(21, 22, 23, 24));

// ---------------------------------------------------------------------------
// Shared GroupBy vs. per-query reference grouping.
// ---------------------------------------------------------------------------

class GroupByProperty : public ::testing::TestWithParam<int> {};

TEST_P(GroupByProperty, PerClassAccumulationEqualsPerQuery) {
  Rng rng(GetParam());
  const SchemaPtr schema = Schema::Make({{"k", ValueType::kInt},
                                         {"v", ValueType::kInt}});
  const int kQueries = 12;

  // Random batch with OVERLAPPING annotation sets (exercises the merge
  // fallback where one query's tuples span several set classes).
  DQBatch in(schema);
  for (int i = 0; i < 300; ++i) {
    std::vector<QueryId> ids = RandomSortedIds(&rng, kQueries, 0.4);
    if (ids.empty()) continue;
    in.Push({Value::Int(rng.Uniform(0, 5)), Value::Int(rng.Uniform(0, 100))},
            QueryIdSet::FromSorted(std::move(ids)));
  }

  GroupByOp op(schema, {0},
               {AggSpec{AggFunc::kSum, 1, "sum"}, AggSpec{AggFunc::kCount, -1, "cnt"},
                AggSpec{AggFunc::kMin, 1, "min"}, AggSpec{AggFunc::kMax, 1, "max"}});
  std::vector<OpQuery> queries(kQueries);
  for (int i = 0; i < kQueries; ++i) queries[static_cast<size_t>(i)].id =
      static_cast<QueryId>(i);
  CycleContext ctx;
  std::vector<BatchRef> inputs;
  inputs.push_back(in);
  const DQBatch out = op.RunCycle(std::move(inputs), queries, ctx, nullptr);

  // Reference: per query, group its subscribed tuples with std::map.
  for (QueryId q = 0; q < static_cast<QueryId>(kQueries); ++q) {
    struct Ref {
      double sum = 0;
      int64_t cnt = 0;
      int64_t min = INT64_MAX, max = INT64_MIN;
    };
    std::map<int64_t, Ref> expect;
    for (size_t i = 0; i < in.size(); ++i) {
      if (!in.qids[i].Contains(q)) continue;
      Ref& r = expect[in.tuples[i][0].AsInt()];
      r.sum += static_cast<double>(in.tuples[i][1].AsInt());
      r.cnt += 1;
      r.min = std::min(r.min, in.tuples[i][1].AsInt());
      r.max = std::max(r.max, in.tuples[i][1].AsInt());
    }
    std::map<int64_t, int> seen;
    for (size_t i = 0; i < out.size(); ++i) {
      if (!out.qids[i].Contains(q)) continue;
      const int64_t key = out.tuples[i][0].AsInt();
      seen[key]++;
      ASSERT_TRUE(expect.count(key)) << "q=" << q << " group " << key;
      const Ref& r = expect[key];
      EXPECT_DOUBLE_EQ(out.tuples[i][1].AsNumeric(), r.sum) << "q=" << q;
      EXPECT_EQ(out.tuples[i][2].AsInt(), r.cnt) << "q=" << q;
      EXPECT_EQ(out.tuples[i][3].AsInt(), r.min) << "q=" << q;
      EXPECT_EQ(out.tuples[i][4].AsInt(), r.max) << "q=" << q;
    }
    // Exactly one output row per (query, group) — no duplicates, no misses.
    EXPECT_EQ(seen.size(), expect.size()) << "q=" << q;
    for (const auto& [key, n] : seen) {
      EXPECT_EQ(n, 1) << "q=" << q << " group " << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupByProperty, ::testing::Values(31, 32, 33, 34, 35));

// ---------------------------------------------------------------------------
// Shared TopN vs. per-query sort+limit reference.
// ---------------------------------------------------------------------------

class TopNProperty : public ::testing::TestWithParam<int> {};

TEST_P(TopNProperty, SharedTopNEqualsPerQueryLimit) {
  Rng rng(GetParam());
  const SchemaPtr schema = Schema::Make({{"a", ValueType::kInt},
                                         {"b", ValueType::kInt}});
  const int kQueries = 8;

  DQBatch in(schema);
  for (int i = 0; i < 200; ++i) {
    std::vector<QueryId> ids = RandomSortedIds(&rng, kQueries, 0.3);
    if (ids.empty()) continue;
    in.Push({Value::Int(rng.Uniform(0, 1000)), Value::Int(i)},
            QueryIdSet::FromSorted(std::move(ids)));
  }

  TopNOp op(schema, {{0, true}, {1, true}}, /*default_limit=*/5);
  std::vector<OpQuery> queries(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    queries[static_cast<size_t>(i)].id = static_cast<QueryId>(i);
    queries[static_cast<size_t>(i)].limit = 1 + i % 7;  // distinct limits
  }
  CycleContext ctx;
  std::vector<BatchRef> inputs;
  inputs.push_back(in);
  const DQBatch out = op.RunCycle(std::move(inputs), queries, ctx, nullptr);

  for (int qi = 0; qi < kQueries; ++qi) {
    const QueryId q = static_cast<QueryId>(qi);
    // Reference: this query's tuples, sorted, first `limit`.
    std::vector<Tuple> mine;
    for (size_t i = 0; i < in.size(); ++i) {
      if (in.qids[i].Contains(q)) mine.push_back(in.tuples[i]);
    }
    std::stable_sort(mine.begin(), mine.end(), [](const Tuple& x, const Tuple& y) {
      if (x[0].AsInt() != y[0].AsInt()) return x[0].AsInt() < y[0].AsInt();
      return x[1].AsInt() < y[1].AsInt();
    });
    mine.resize(std::min<size_t>(mine.size(),
                                 static_cast<size_t>(queries[static_cast<size_t>(qi)].limit)));

    std::vector<Tuple> got;
    for (size_t i = 0; i < out.size(); ++i) {
      if (out.qids[i].Contains(q)) got.push_back(out.tuples[i]);
    }
    ASSERT_EQ(got.size(), mine.size()) << "q=" << qi;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(TuplesEqual(got[i], mine[i])) << "q=" << qi << " row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopNProperty, ::testing::Values(41, 42, 43, 44, 45));

}  // namespace
}  // namespace shareddb
