// Operator replication tests (paper §4.5: "if a specific operator becomes a
// bottleneck, SharedDB can partition the load across two replicas of the
// same physical operators"). Replication must never change results, must
// split the per-replica work, and must reduce the simulated batch makespan
// when the bottleneck is per-query work.

#include <gtest/gtest.h>

#include "api/server.h"
#include "core/engine.h"
#include "core/plan_builder.h"
#include "sim/cost_model.h"

namespace shareddb {
namespace {

/// Paused server wrapper: deterministic single-heartbeat stepping.
struct SteppedServer {
  explicit SteppedServer(Engine* engine)
      : server(engine, [] {
          api::ServerOptions o;
          o.start_paused = true;
          return o;
        }()),
        session(server.OpenSession()) {}
  api::Server server;
  std::unique_ptr<api::Session> session;
};

class ReplicationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    items_ = catalog_.CreateTable(
        "items", Schema::Make({{"id", ValueType::kInt},
                               {"cat", ValueType::kInt},
                               {"price", ValueType::kInt}}));
    for (int i = 0; i < 400; ++i) {
      items_->Insert({Value::Int(i), Value::Int(i % 8), Value::Int(i * 3 % 97)}, 1);
    }
    catalog_.snapshots().Reset(1);
  }

  std::unique_ptr<GlobalPlan> BuildPlan() {
    GlobalPlanBuilder b(&catalog_);
    const SchemaPtr s = items_->schema();
    b.AddQuery("by_cat", logical::Scan("items", Expr::Eq(Expr::Column(*s, "cat"),
                                                         Expr::Param(0))));
    b.AddQuery("top_price", logical::TopN(logical::Scan("items"),
                                          {{"price", false}, {"id", true}},
                                          Expr::Param(0)));
    b.AddInsert("add_item", "items",
                {Expr::Param(0), Expr::Param(1), Expr::Param(2)});
    return b.Build();
  }

  // The scan node is node 0 (sources are built first).
  static constexpr int kScanNode = 0;

  Catalog catalog_;
  Table* items_;
};

TEST_F(ReplicationFixture, ReplicatedResultsMatchUnreplicated) {
  auto run = [&](int replicas) {
    auto plan = BuildPlan();
    plan->SetReplicas(kScanNode, replicas);
    Engine engine(std::move(plan));
    SteppedServer s(&engine);
    std::vector<api::AsyncResult> fs;
    for (int i = 0; i < 40; ++i) {
      fs.push_back(s.session->ExecuteAsync("by_cat", {Value::Int(i % 8)}));
    }
    fs.push_back(s.session->ExecuteAsync("top_price", {Value::Int(5)}));
    s.server.StepBatch();
    std::vector<std::vector<std::string>> out;
    for (auto& f : fs) {
      std::vector<std::string> rows;
      for (const Tuple& t : f.Get().rows) rows.push_back(TupleToString(t));
      std::sort(rows.begin(), rows.end());
      out.push_back(std::move(rows));
    }
    return out;
  };
  const auto base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(4), base);
  // More replicas than queries degrades gracefully.
  EXPECT_EQ(run(64), base);
}

TEST_F(ReplicationFixture, UnitStatsSplitAcrossReplicas) {
  auto plan = BuildPlan();
  plan->SetReplicas(kScanNode, 3);
  Engine engine(std::move(plan));
  SteppedServer s(&engine);
  std::vector<api::AsyncResult> fs;
  for (int i = 0; i < 30; ++i) {
    fs.push_back(s.session->ExecuteAsync("by_cat", {Value::Int(i % 8)}));
  }
  const BatchReport report = s.server.StepBatch();
  for (auto& f : fs) f.Get();
  // One unit per replica of the scan + one per other participating node.
  EXPECT_GT(report.unit_stats.size(), report.node_stats.size() - 1);
  // Each scan replica scanned the whole table (the replication tradeoff:
  // more data work, less per-query work per core).
  uint64_t scan_rows = 0;
  int scan_units = 0;
  for (const WorkStats& u : report.unit_stats) {
    if (u.rows_scanned > 0) {
      EXPECT_EQ(u.rows_scanned, 400u);
      scan_rows += u.rows_scanned;
      ++scan_units;
    }
  }
  EXPECT_EQ(scan_units, 3);
  EXPECT_EQ(report.node_stats[kScanNode].rows_scanned, scan_rows);
}

TEST_F(ReplicationFixture, UpdatesApplyExactlyOnceUnderReplication) {
  auto plan = BuildPlan();
  plan->SetReplicas(kScanNode, 4);
  Engine engine(std::move(plan));
  SteppedServer s(&engine);
  auto fu = s.session->ExecuteAsync(
      "add_item", {Value::Int(1000), Value::Int(1), Value::Int(5)});
  std::vector<api::AsyncResult> fs;
  for (int i = 0; i < 8; ++i) {
    fs.push_back(s.session->ExecuteAsync("by_cat", {Value::Int(i)}));
  }
  s.server.StepBatch();
  EXPECT_EQ(fu.Get().update_count, 1u);
  // Exactly one copy of the row exists.
  auto fq = s.session->ExecuteAsync("by_cat", {Value::Int(1)});
  s.server.StepBatch();
  const ResultSet rs = fq.Get();
  int found = 0;
  for (const Tuple& t : rs.rows) {
    if (t[0].AsInt() == 1000) ++found;
  }
  EXPECT_EQ(found, 1);
}

TEST_F(ReplicationFixture, ReplicationReducesSimulatedMakespan) {
  // Saturate the scan with per-query work, then check that the LPT makespan
  // over unit stats shrinks when the node is replicated.
  sim::CostModel cost;
  auto makespan = [&](int replicas) {
    auto plan = BuildPlan();
    plan->SetReplicas(kScanNode, replicas);
    Engine engine(std::move(plan));
    SteppedServer s(&engine);
    std::vector<api::AsyncResult> fs;
    for (int i = 0; i < 512; ++i) {
      fs.push_back(s.session->ExecuteAsync("by_cat", {Value::Int(i % 8)}));
    }
    const BatchReport r = s.server.StepBatch();
    for (auto& f : fs) f.Get();
    std::vector<double> units;
    for (const WorkStats& u : r.unit_stats) {
      const double s = cost.Seconds(u);
      if (s > 0) units.push_back(s);
    }
    return sim::LptMakespanSeconds(units, /*cores=*/8);
  };
  const double one = makespan(1);
  const double four = makespan(4);
  EXPECT_LT(four, one * 0.75) << "replication should relieve the bottleneck";
}

}  // namespace
}  // namespace shareddb
