// Shared result-comparison helpers for the test suites.
//
// Before this header existed, parallel_test, session_stress_test and
// integration_test each carried a private `Canonical()` built on
// Value::ToString — whose "%.6g" collapses distinct doubles and renders
// Int(3) like Double(3.0). The canonical forms here come from
// src/testing/canonical.h and are injective exactly up to the Value total
// order (type-tagged, %.17g doubles, one NaN token, -0 folded), so
// comparisons stay sound for NaN keys and int64-vs-double columns.

#ifndef SHAREDDB_TESTS_TESTING_UTIL_H_
#define SHAREDDB_TESTS_TESTING_UTIL_H_

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/batch.h"
#include "core/query.h"
#include "testing/canonical.h"

namespace shareddb {

/// Order-insensitive canonical form of a result set (or raw rows).
inline std::multiset<std::string> Canonical(const ResultSet& rs) {
  return testing::CanonicalRows(rs);
}
inline std::multiset<std::string> Canonical(const std::vector<Tuple>& rows) {
  return testing::CanonicalRows(rows);
}

/// Asserts two result sets carry the same rows (any order), the same status
/// class and the same update count.
inline void ExpectResultsEqual(const ResultSet& a, const ResultSet& b,
                               const std::string& label) {
  EXPECT_EQ(a.status.ok(), b.status.ok())
      << label << ": " << a.status.ToString() << " vs " << b.status.ToString();
  EXPECT_EQ(a.update_count, b.update_count) << label;
  EXPECT_EQ(Canonical(a), Canonical(b)) << label;
}

/// Asserts batches are identical: same size, row order, values, annotations.
inline void ExpectBatchesIdentical(const DQBatch& a, const DQBatch& b,
                                   const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.tuples[i].size(), b.tuples[i].size()) << label << " row " << i;
    for (size_t c = 0; c < a.tuples[i].size(); ++c) {
      EXPECT_EQ(a.tuples[i][c].Compare(b.tuples[i][c]), 0)
          << label << " row " << i << " col " << c << ": "
          << testing::CanonicalValue(a.tuples[i][c]) << " vs "
          << testing::CanonicalValue(b.tuples[i][c]);
    }
    EXPECT_TRUE(a.qids[i] == b.qids[i]) << label << " qids of row " << i;
  }
}

}  // namespace shareddb

#endif  // SHAREDDB_TESTS_TESTING_UTIL_H_
