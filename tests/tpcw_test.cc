// TPC-W substrate tests: data generator, mixes, statements, and — most
// importantly — DIFFERENTIAL execution: every web interaction is run with
// identical parameters against SharedDB (batched shared execution) and the
// query-at-a-time baseline over identically seeded databases; every SELECT
// must return the same rows.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "api/server.h"
#include "baseline/profiles.h"
#include "tpcw/global_plan.h"
#include "tpcw/harness.h"
#include "tpcw/schema.h"

namespace shareddb {
namespace tpcw {
namespace {

TpcwScale SmallScale() {
  TpcwScale s;
  s.num_items = 500;
  s.num_ebs = 2;
  return s;
}

TEST(TpcwDatagen, DeterministicUnderSeed) {
  auto a = MakeTpcwDatabase(SmallScale(), 7);
  auto b = MakeTpcwDatabase(SmallScale(), 7);
  ASSERT_EQ(a->catalog.NumTables(), b->catalog.NumTables());
  for (size_t t = 0; t < a->catalog.NumTables(); ++t) {
    Table* ta = a->catalog.TableById(t);
    Table* tb = b->catalog.TableById(t);
    ASSERT_EQ(ta->PhysicalSize(), tb->PhysicalSize()) << ta->name();
    const auto rows_a = ta->DumpRows();
    const auto rows_b = tb->DumpRows();
    for (size_t i = 0; i < rows_a.size(); ++i) {
      EXPECT_TRUE(TuplesEqual(rows_a[i].data, rows_b[i].data))
          << ta->name() << " row " << i;
    }
  }
}

TEST(TpcwDatagen, CardinalitiesFollowScale) {
  const TpcwScale s = SmallScale();
  auto db = MakeTpcwDatabase(s, 7);
  EXPECT_EQ(db->catalog.MustGetTable(kItem)->PhysicalSize(),
            static_cast<size_t>(s.num_items));
  EXPECT_EQ(db->catalog.MustGetTable(kCustomer)->PhysicalSize(),
            static_cast<size_t>(s.NumCustomers()));
  EXPECT_EQ(db->catalog.MustGetTable(kCountry)->PhysicalSize(),
            static_cast<size_t>(s.NumCountries()));
  EXPECT_EQ(db->catalog.MustGetTable(kOrders)->PhysicalSize(),
            static_cast<size_t>(s.NumOrders()));
  // The id allocator must start past every loaded id.
  EXPECT_GE(db->ids.next_order.load(), static_cast<int64_t>(s.NumOrders()));
  EXPECT_GE(db->ids.next_customer.load(), static_cast<int64_t>(s.NumCustomers()));
}

TEST(TpcwMixes, ProbabilitiesArePositiveAndNormalized) {
  for (const Mix mix : {Mix::kBrowsing, Mix::kShopping, Mix::kOrdering}) {
    double total = 0;
    for (int i = 0; i < kNumInteractions; ++i) {
      const double p =
          InteractionProbability(mix, static_cast<WebInteraction>(i));
      EXPECT_GE(p, 0) << MixName(mix) << " " << i;
      total += p;
    }
    EXPECT_NEAR(total, 100.0, 0.5) << MixName(mix);
  }
}

TEST(TpcwMixes, SampleFollowsDistribution) {
  Rng rng(9);
  std::array<int, kNumInteractions> counts{};
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    counts[static_cast<size_t>(SampleInteraction(Mix::kBrowsing, &rng))]++;
  }
  for (int i = 0; i < kNumInteractions; ++i) {
    const double expect =
        InteractionProbability(Mix::kBrowsing, static_cast<WebInteraction>(i)) /
        100.0 * kDraws;
    EXPECT_NEAR(counts[static_cast<size_t>(i)], expect,
                5 * std::sqrt(expect + 1) + 10)
        << InteractionName(static_cast<WebInteraction>(i));
  }
}

TEST(TpcwMixes, ThinkTimesCappedAndPositive) {
  Rng rng(4);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    const double t = SampleThinkTimeSeconds(&rng);
    ASSERT_GE(t, 0);
    ASSERT_LE(t, kThinkTimeMaxSeconds);
    sum += t;
  }
  EXPECT_NEAR(sum / 5000, kThinkTimeMeanSeconds, 0.7);
}

TEST(TpcwMixes, TimeoutsWithinSpecRange) {
  for (int i = 0; i < kNumInteractions; ++i) {
    const double t = InteractionTimeoutSeconds(static_cast<WebInteraction>(i));
    EXPECT_GE(t, 2.0);
    EXPECT_LE(t, 20.0);
  }
}

TEST(TpcwStatements, CatalogHasUniqueNames) {
  auto db = MakeTpcwDatabase(SmallScale(), 7);
  const std::vector<TpcwStatementDef> defs = BuildTpcwStatements(db->catalog);
  EXPECT_GE(defs.size(), 25u);  // "about thirty" prepared statements (§2)
  std::map<std::string, int> names;
  for (const TpcwStatementDef& d : defs) names[d.name]++;
  for (const auto& [name, count] : names) {
    EXPECT_EQ(count, 1) << "duplicate statement " << name;
  }
}

TEST(TpcwGlobalPlan, SharesOperatorsAcrossStatements) {
  auto db = MakeTpcwDatabase(SmallScale(), 7);
  std::unique_ptr<GlobalPlan> plan = BuildTpcwGlobalPlan(&db->catalog);
  // ~26 database operators + sources (Figure 6); sharing means the node
  // count is far below the sum of per-statement plan sizes.
  EXPECT_GE(plan->num_nodes(), 20u);
  EXPECT_LE(plan->num_nodes(), 60u);
  size_t per_statement_nodes = 0;
  for (size_t s = 0; s < plan->num_statements(); ++s) {
    per_statement_nodes += plan->statement(s).node_configs.size();
  }
  EXPECT_GT(per_statement_nodes, plan->num_nodes());
}

// ---------------------------------------------------------------------------
// Differential: SharedDB vs. query-at-a-time on identical databases.
// ---------------------------------------------------------------------------

class TpcwDifferential : public ::testing::TestWithParam<int> {};

std::multiset<std::string> Canonical(const ResultSet& rs) {
  std::multiset<std::string> rows;
  for (const Tuple& t : rs.rows) rows.insert(TupleToString(t));
  return rows;
}

TEST_P(TpcwDifferential, InteractionMatchesBaseline) {
  const auto wi = static_cast<WebInteraction>(GetParam());
  const TpcwScale scale = SmallScale();

  auto db_s = MakeTpcwDatabase(scale, 11);
  Engine engine(BuildTpcwGlobalPlan(&db_s->catalog));
  api::Server server(&engine);
  auto session = server.OpenSession();
  auto db_b = MakeTpcwDatabase(scale, 11);
  baseline::BaselineEngine base(&db_b->catalog, SystemXLikeProfile());
  RegisterTpcwBaseline(&base);

  // Drive both engines with the SAME seeded statement streams.
  EbState eb_s, eb_b;
  eb_s.customer_id = eb_b.customer_id = 5;
  Rng rng_s(77), rng_b(77);
  for (int round = 0; round < 6; ++round) {
    const std::vector<StatementCall> calls_s =
        BuildInteraction(wi, scale, &eb_s, &db_s->ids, &rng_s);
    const std::vector<StatementCall> calls_b =
        BuildInteraction(wi, scale, &eb_b, &db_b->ids, &rng_b);
    ASSERT_EQ(calls_s.size(), calls_b.size());
    for (size_t c = 0; c < calls_s.size(); ++c) {
      ASSERT_EQ(calls_s[c].statement, calls_b[c].statement);
      ResultSet rs = session->Execute(calls_s[c].statement, calls_s[c].params);
      baseline::BaselineResult rb =
          base.ExecuteNamed(calls_b[c].statement, calls_b[c].params);
      EXPECT_EQ(rs.update_count, rb.result.update_count)
          << calls_s[c].statement << " round " << round;
      EXPECT_EQ(Canonical(rs), Canonical(rb.result))
          << calls_s[c].statement << " round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllInteractions, TpcwDifferential,
                         ::testing::Range(0, kNumInteractions),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return InteractionName(
                               static_cast<WebInteraction>(info.param));
                         });

// Many concurrent queries of one statement in one batch must each see
// exactly what per-query execution produces.
TEST(TpcwDifferential2, BatchedBestSellersMatchesSequentialBaseline) {
  const TpcwScale scale = SmallScale();
  auto db_s = MakeTpcwDatabase(scale, 3);
  Engine engine(BuildTpcwGlobalPlan(&db_s->catalog));
  api::ServerOptions sopts;
  sopts.start_paused = true;
  api::Server server(&engine, sopts);
  auto session = server.OpenSession();
  auto db_b = MakeTpcwDatabase(scale, 3);
  baseline::BaselineEngine base(&db_b->catalog, SystemXLikeProfile());
  RegisterTpcwBaseline(&base);

  std::vector<std::vector<Value>> params;
  for (int i = 0; i < 40; ++i) {
    params.push_back({Value::Int(i % 24), Value::Int(kTodayDay - 60)});
  }
  std::vector<api::AsyncResult> fs;
  for (const auto& p : params) fs.push_back(session->ExecuteAsync("best_sellers", p));
  server.StepBatch();
  for (size_t i = 0; i < params.size(); ++i) {
    ResultSet shared = fs[i].Get();
    baseline::BaselineResult b = base.ExecuteNamed("best_sellers", params[i]);
    EXPECT_EQ(Canonical(shared), Canonical(b.result)) << "query " << i;
  }
}

TEST(TpcwDifferential2, BatchedSearchesMatchBaseline) {
  const TpcwScale scale = SmallScale();
  auto db_s = MakeTpcwDatabase(scale, 3);
  Engine engine(BuildTpcwGlobalPlan(&db_s->catalog));
  api::ServerOptions sopts;
  sopts.start_paused = true;
  api::Server server(&engine, sopts);
  auto session = server.OpenSession();
  auto db_b = MakeTpcwDatabase(scale, 3);
  baseline::BaselineEngine base(&db_b->catalog, SystemXLikeProfile());
  RegisterTpcwBaseline(&base);

  std::vector<std::vector<Value>> params;
  for (int i = 0; i < 30; ++i) {
    params.push_back({Value::Str("title " + std::to_string(i * 7 % 500) + " %")});
  }
  std::vector<api::AsyncResult> fs;
  for (const auto& p : params) {
    fs.push_back(session->ExecuteAsync("search_by_title", p));
  }
  server.StepBatch();
  for (size_t i = 0; i < params.size(); ++i) {
    ResultSet shared = fs[i].Get();
    baseline::BaselineResult b = base.ExecuteNamed("search_by_title", params[i]);
    EXPECT_EQ(Canonical(shared), Canonical(b.result)) << "query " << i;
    EXPECT_GE(shared.rows.size(), 1u) << "query " << i;  // its own item
  }
}

// The prepared-statement steady state (§3.2): the SAME statement mix
// resubmitted every batch with fresh parameters must build each scan's
// PredicateIndex exactly once — parameter-only rebinds take the cheap
// constant-swap path, never a rebuild. This is the CI guard for the
// template-keyed predicate cache.
TEST(TpcwRebind, IndexBuildsStableAcrossParamRebinds) {
  const TpcwScale scale = SmallScale();
  auto db = MakeTpcwDatabase(scale, 3);
  Engine engine(BuildTpcwGlobalPlan(&db->catalog));
  api::ServerOptions sopts;
  sopts.start_paused = true;
  api::Server server(&engine, sopts);
  auto session = server.OpenSession();
  Rng rng(5);

  auto submit_mix = [&] {
    // Statements that push per-query predicates into shared scans:
    // best_sellers parameterizes the orders scan (o_date > ?), and
    // items_by_id_list parameterizes the item scan with an IN-list.
    // Handles must stay alive until the batch runs: dropping an AsyncResult
    // cancels the call (abandoned-call semantics).
    std::vector<api::AsyncResult> fs;
    for (int i = 0; i < 4; ++i) {
      fs.push_back(session->ExecuteAsync(
          "best_sellers", {Value::Int(rng.Uniform(0, 23)),
                           Value::Int(kTodayDay - rng.Uniform(10, 90))}));
    }
    for (int i = 0; i < 3; ++i) {
      std::vector<Value> ids;
      for (int k = 0; k < 5; ++k) ids.push_back(Value::Int(rng.Uniform(0, 499)));
      fs.push_back(session->ExecuteAsync("items_by_id_list", std::move(ids)));
    }
    fs.push_back(session->ExecuteAsync("search_by_subject",
                                       {Value::Int(rng.Uniform(0, 23))}));
    return fs;
  };

  auto fs0 = submit_mix();
  server.StepBatch();
  const Engine::PredicateCacheStats first = engine.predicate_cache_stats();
  EXPECT_GT(first.index_builds, 0u);

  constexpr int kRebindCycles = 6;
  for (int round = 0; round < kRebindCycles; ++round) {
    auto fs = submit_mix();
    server.StepBatch();
  }
  const Engine::PredicateCacheStats after = engine.predicate_cache_stats();
  // Zero rebuilds across parameter-only rebind batches...
  EXPECT_EQ(after.index_builds, first.index_builds);
  // ...the parameter-bearing scans (orders: o_date range; item: IN-list)
  // were each served by the rebind fast path every cycle, and the match-all
  // scans by the exact-hit path (no rebind needed).
  EXPECT_GE(after.index_rebinds, first.index_rebinds + kRebindCycles * 2u);

  // Changing the statement MIX rebuilds (once), then fresh params again
  // rebind against the new mix.
  auto fchange = session->ExecuteAsync(
      "best_sellers", {Value::Int(0), Value::Int(kTodayDay - 30)});
  server.StepBatch();
  const Engine::PredicateCacheStats changed = engine.predicate_cache_stats();
  EXPECT_GT(changed.index_builds, after.index_builds);
}

// Sharing sanity: a batch of N best-sellers queries does far less work than
// N times the single-query batch (the paper's bounded-computation claim).
TEST(TpcwSharing, BestSellersWorkIsSublinear) {
  const TpcwScale scale = SmallScale();
  auto run = [&](int n) {
    auto db = MakeTpcwDatabase(scale, 3);
    Engine engine(BuildTpcwGlobalPlan(&db->catalog));
    api::ServerOptions sopts;
    sopts.start_paused = true;
    api::Server server(&engine, sopts);
    auto session = server.OpenSession();
    std::vector<api::AsyncResult> fs;
    for (int i = 0; i < n; ++i) {
      fs.push_back(session->ExecuteAsync(
          "best_sellers", {Value::Int(i % 24), Value::Int(kTodayDay - 60)}));
    }
    const BatchReport r = server.StepBatch();
    for (auto& f : fs) f.Get();
    return r.TotalWork().Total();
  };
  const uint64_t w1 = run(1);
  const uint64_t w64 = run(64);
  EXPECT_LT(w64, w1 * 16) << "w1=" << w1 << " w64=" << w64;
}

}  // namespace
}  // namespace tpcw
}  // namespace shareddb
