// Shared-operator tests. Each operator is checked against a per-query naive
// reference (the "few small operations" of the query-at-a-time model) —
// results must match exactly, and the shared work must stay bounded. This is
// the paper's §3.3/§3.4 semantics: one big operation + query-id routing
// equals many small operations.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/ops/distinct_op.h"
#include "core/ops/filter_op.h"
#include "core/ops/group_by_op.h"
#include "core/ops/hash_join_op.h"
#include "core/ops/index_join_op.h"
#include "core/ops/qid_join_op.h"
#include "core/ops/router.h"
#include "core/ops/scan_op.h"
#include "core/ops/probe_op.h"
#include "core/ops/sort_op.h"
#include "core/ops/top_n_op.h"

namespace shareddb {
namespace {

const std::vector<Value> kNoParams;

SchemaPtr RSchema() {
  return Schema::Make({{"id", ValueType::kInt}, {"city", ValueType::kInt}});
}
SchemaPtr SSchema() {
  return Schema::Make({{"id", ValueType::kInt}, {"price", ValueType::kInt}});
}

std::vector<Tuple> SortedTuples(std::vector<Tuple> v) {
  std::sort(v.begin(), v.end(), TupleLess);
  return v;
}

CycleContext Ctx() {
  CycleContext ctx;
  ctx.read_snapshot = 1;
  ctx.write_version = 2;
  return ctx;
}

// --- Figure 3: shared hash join ------------------------------------------------

TEST(HashJoinOpTest, Figure3Semantics) {
  // R tuples relevant to {Q0}, {Q1}, {Q0,Q1}; S tuples similar. A pair joins
  // only if the data keys match AND the interest sets intersect.
  auto r = RSchema();
  auto s = SSchema();
  DQBatch left(r), right(s);
  left.Push({Value::Int(1), Value::Int(10)}, QueryIdSet{0});
  left.Push({Value::Int(2), Value::Int(20)}, QueryIdSet{1});
  left.Push({Value::Int(3), Value::Int(30)}, QueryIdSet{0, 1});
  right.Push({Value::Int(1), Value::Int(100)}, QueryIdSet{1});   // key 1: Q1 only
  right.Push({Value::Int(2), Value::Int(200)}, QueryIdSet{1});
  right.Push({Value::Int(3), Value::Int(300)}, QueryIdSet{0});

  HashJoinOp op(r, s, 0, 0, true, "r", "s");
  std::vector<OpQuery> queries{{0, nullptr, nullptr, -1}, {1, nullptr, nullptr, -1}};
  std::vector<BatchRef> inputs;
  inputs.push_back(std::move(left));
  inputs.push_back(std::move(right));
  WorkStats stats;
  DQBatch out = op.RunCycle(std::move(inputs), queries, Ctx(), &stats);

  // Key 1: R{Q0} x S{Q1} -> empty intersection, no output.
  // Key 2: R{Q1} x S{Q1} -> Q1. Key 3: R{Q0,Q1} x S{Q0} -> Q0.
  EXPECT_EQ(out.RowsFor(0).size(), 1u);
  EXPECT_EQ(out.RowsFor(1).size(), 1u);
  EXPECT_EQ(out.RowsFor(0)[0][0].AsInt(), 3);
  EXPECT_EQ(out.RowsFor(1)[0][0].AsInt(), 2);
  EXPECT_EQ(out.schema->column(0).name, "r.id");
  EXPECT_EQ(out.schema->column(2).name, "s.id");
  EXPECT_GT(stats.hash_builds, 0u);
}

TEST(HashJoinOpTest, PerQueryResidualStripsIds) {
  auto r = RSchema();
  auto s = SSchema();
  DQBatch left(r), right(s);
  left.Push({Value::Int(1), Value::Int(10)}, QueryIdSet{0, 1});
  right.Push({Value::Int(1), Value::Int(100)}, QueryIdSet{0, 1});
  HashJoinOp op(r, s, 0, 0);
  // Q0 requires s.price > 500 (fails); Q1 requires s.price > 50 (passes).
  std::vector<OpQuery> queries{
      {0, Expr::Gt(Expr::Column(3), Expr::Literal(Value::Int(500))), nullptr, -1},
      {1, Expr::Gt(Expr::Column(3), Expr::Literal(Value::Int(50))), nullptr, -1}};
  std::vector<BatchRef> inputs;
  inputs.push_back(std::move(left));
  inputs.push_back(std::move(right));
  DQBatch out = op.RunCycle(std::move(inputs), queries, Ctx(), nullptr);
  EXPECT_TRUE(out.RowsFor(0).empty());
  EXPECT_EQ(out.RowsFor(1).size(), 1u);
}

TEST(HashJoinOpTest, MasksForeignQueryIds) {
  // Tuples annotated for a query not active at this node must not leak.
  auto r = RSchema();
  auto s = SSchema();
  DQBatch left(r), right(s);
  left.Push({Value::Int(1), Value::Int(10)}, QueryIdSet{0, 7});
  right.Push({Value::Int(1), Value::Int(100)}, QueryIdSet{0, 7});
  HashJoinOp op(r, s, 0, 0);
  std::vector<OpQuery> queries{{0, nullptr, nullptr, -1}};  // 7 is foreign
  std::vector<BatchRef> inputs;
  inputs.push_back(std::move(left));
  inputs.push_back(std::move(right));
  DQBatch out = op.RunCycle(std::move(inputs), queries, Ctx(), nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.qids[0].ids(), (std::vector<QueryId>{0}));
}

TEST(HashJoinOpTest, BuildSideSelectionEquivalent) {
  Rng rng(5);
  auto r = RSchema();
  auto s = SSchema();
  DQBatch left(r), right(s);
  for (int i = 0; i < 50; ++i) {
    left.Push({Value::Int(rng.Uniform(0, 10)), Value::Int(i)},
              QueryIdSet{static_cast<QueryId>(rng.Uniform(0, 3))});
    right.Push({Value::Int(rng.Uniform(0, 10)), Value::Int(i)},
               QueryIdSet{static_cast<QueryId>(rng.Uniform(0, 3))});
  }
  std::vector<OpQuery> queries{{0, nullptr, nullptr, -1},
                               {1, nullptr, nullptr, -1},
                               {2, nullptr, nullptr, -1}};
  HashJoinOp build_l(r, s, 0, 0, true);
  HashJoinOp build_r(r, s, 0, 0, false);
  std::vector<BatchRef> in1, in2;
  in1.push_back(left);
  in1.push_back(right);
  in2.push_back(left);
  in2.push_back(right);
  DQBatch o1 = build_l.RunCycle(std::move(in1), queries, Ctx(), nullptr);
  DQBatch o2 = build_r.RunCycle(std::move(in2), queries, Ctx(), nullptr);
  for (QueryId q = 0; q < 3; ++q) {
    EXPECT_EQ(SortedTuples(o1.RowsFor(q)), SortedTuples(o2.RowsFor(q)));
  }
}

// QidJoin (set-based join on query_id, [16]) must agree with HashJoin.
TEST(QidJoinOpTest, AgreesWithHashJoin) {
  Rng rng(77);
  auto r = RSchema();
  auto s = SSchema();
  for (int round = 0; round < 20; ++round) {
    DQBatch left(r), right(s);
    const int n = static_cast<int>(rng.Uniform(1, 60));
    for (int i = 0; i < n; ++i) {
      QueryIdSet ql, qr;
      for (QueryId q = 0; q < 4; ++q) {
        if (rng.Bernoulli(0.4)) ql.Insert(q);
        if (rng.Bernoulli(0.4)) qr.Insert(q);
      }
      if (!ql.empty()) {
        left.Push({Value::Int(rng.Uniform(0, 8)), Value::Int(i)}, ql);
      }
      if (!qr.empty()) {
        right.Push({Value::Int(rng.Uniform(0, 8)), Value::Int(1000 + i)}, qr);
      }
    }
    std::vector<OpQuery> queries;
    for (QueryId q = 0; q < 4; ++q) queries.push_back({q, nullptr, nullptr, -1});
    HashJoinOp hj(r, s, 0, 0);
    QidJoinOp qj(r, s, 0, 0);
    std::vector<BatchRef> in1, in2;
    in1.push_back(left);
    in1.push_back(right);
    in2.push_back(left);
    in2.push_back(right);
    DQBatch o1 = hj.RunCycle(std::move(in1), queries, Ctx(), nullptr);
    DQBatch o2 = qj.RunCycle(std::move(in2), queries, Ctx(), nullptr);
    for (QueryId q = 0; q < 4; ++q) {
      EXPECT_EQ(SortedTuples(o1.RowsFor(q)), SortedTuples(o2.RowsFor(q)))
          << "round " << round << " query " << q;
    }
  }
}

// --- shared sort (Figure 4) -----------------------------------------------------

TEST(SortOpTest, Figure4SharedSort) {
  // The paper's exact example: two queries, one shared sort by name.
  auto schema = Schema::Make({{"name", ValueType::kString},
                              {"account", ValueType::kInt},
                              {"birthdate", ValueType::kString}});
  DQBatch in(schema);
  // Query A: BIRTHDATE > 1980.01.01; Query B: ACCOUNT > 1000.
  auto add = [&](const char* n, int64_t acc, const char* bd,
                 std::initializer_list<QueryId> qs) {
    in.Push({Value::Str(n), Value::Int(acc), Value::Str(bd)}, QueryIdSet(qs));
  };
  add("John Smith", 3000, "1980.03.05", {0, 1});
  add("Bill Harisson", 1230, "1978.03.02", {1});
  add("Nick Lee", 540, "1982.02.09", {0});
  add("James Meyer", 2300, "1981.03.09", {0, 1});
  // Kate Johnson matches neither query: never enters the operator.

  SortOp op(schema, {{0, true}});
  std::vector<OpQuery> queries{{0, nullptr, nullptr, -1}, {1, nullptr, nullptr, -1}};
  std::vector<BatchRef> inputs;
  inputs.push_back(std::move(in));
  WorkStats stats;
  DQBatch out = op.RunCycle(std::move(inputs), queries, Ctx(), &stats);

  // One shared sort of 4 tuples, not two sorts of 3 tuples each.
  EXPECT_EQ(out.size(), 4u);
  const std::vector<Tuple> a = out.RowsFor(0);
  const std::vector<Tuple> b = out.RowsFor(1);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(a[0][0].AsString(), "James Meyer");
  EXPECT_EQ(a[1][0].AsString(), "John Smith");
  EXPECT_EQ(a[2][0].AsString(), "Nick Lee");
  EXPECT_EQ(b[0][0].AsString(), "Bill Harisson");
  EXPECT_EQ(b[1][0].AsString(), "James Meyer");
  EXPECT_EQ(b[2][0].AsString(), "John Smith");
}

TEST(SortOpTest, DescendingAndMultiKey) {
  auto schema = RSchema();
  DQBatch in(schema);
  in.Push({Value::Int(1), Value::Int(5)}, QueryIdSet{0});
  in.Push({Value::Int(2), Value::Int(5)}, QueryIdSet{0});
  in.Push({Value::Int(3), Value::Int(1)}, QueryIdSet{0});
  SortOp op(schema, {{1, false}, {0, true}});  // city desc, id asc
  std::vector<OpQuery> queries{{0, nullptr, nullptr, -1}};
  std::vector<BatchRef> inputs;
  inputs.push_back(std::move(in));
  DQBatch out = op.RunCycle(std::move(inputs), queries, Ctx(), nullptr);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.tuples[0][0].AsInt(), 1);
  EXPECT_EQ(out.tuples[1][0].AsInt(), 2);
  EXPECT_EQ(out.tuples[2][0].AsInt(), 3);
}

// --- shared Top-N ------------------------------------------------------------------

TEST(TopNOpTest, PerQueryLimits) {
  auto schema = RSchema();
  DQBatch in(schema);
  for (int i = 0; i < 10; ++i) {
    in.Push({Value::Int(i), Value::Int(100 - i)}, QueryIdSet{0, 1});
  }
  TopNOp op(schema, {{0, true}});
  std::vector<OpQuery> queries{{0, nullptr, nullptr, 3}, {1, nullptr, nullptr, 7}};
  std::vector<BatchRef> inputs;
  inputs.push_back(std::move(in));
  DQBatch out = op.RunCycle(std::move(inputs), queries, Ctx(), nullptr);
  EXPECT_EQ(out.RowsFor(0).size(), 3u);
  EXPECT_EQ(out.RowsFor(1).size(), 7u);
  // Q0's rows are the global first three in sort order.
  const std::vector<Tuple> q0 = out.RowsFor(0);
  EXPECT_EQ(q0[0][0].AsInt(), 0);
  EXPECT_EQ(q0[2][0].AsInt(), 2);
}

TEST(TopNOpTest, PerQueryPredicateFiltersBeforeCounting) {
  auto schema = RSchema();
  DQBatch in(schema);
  for (int i = 0; i < 10; ++i) {
    in.Push({Value::Int(i), Value::Int(i % 2)}, QueryIdSet{0});
  }
  TopNOp op(schema, {{0, true}});
  // Only odd cities count; take top 2.
  std::vector<OpQuery> queries{
      {0, Expr::Eq(Expr::Column(1), Expr::Literal(Value::Int(1))), nullptr, 2}};
  std::vector<BatchRef> inputs;
  inputs.push_back(std::move(in));
  DQBatch out = op.RunCycle(std::move(inputs), queries, Ctx(), nullptr);
  const std::vector<Tuple> rows = out.RowsFor(0);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsInt(), 1);
  EXPECT_EQ(rows[1][0].AsInt(), 3);
}

TEST(TopNOpTest, UnlimitedQueryGetsAll) {
  auto schema = RSchema();
  DQBatch in(schema);
  for (int i = 0; i < 5; ++i) in.Push({Value::Int(i), Value::Int(0)}, QueryIdSet{0});
  TopNOp op(schema, {{0, true}});
  std::vector<OpQuery> queries{{0, nullptr, nullptr, -1}};
  std::vector<BatchRef> inputs;
  inputs.push_back(std::move(in));
  DQBatch out = op.RunCycle(std::move(inputs), queries, Ctx(), nullptr);
  EXPECT_EQ(out.RowsFor(0).size(), 5u);
}

// --- shared group-by ---------------------------------------------------------------

TEST(GroupByOpTest, SharedGroupingPerQueryAggregation) {
  auto schema = Schema::Make({{"country", ValueType::kInt},
                              {"amount", ValueType::kInt}});
  DQBatch in(schema);
  // Q0 subscribed to all; Q1 only to amount >= 10 rows (as if filtered).
  in.Push({Value::Int(1), Value::Int(5)}, QueryIdSet{0});
  in.Push({Value::Int(1), Value::Int(10)}, QueryIdSet{0, 1});
  in.Push({Value::Int(2), Value::Int(20)}, QueryIdSet{0, 1});
  GroupByOp op(schema, {0},
               {AggSpec{AggFunc::kCount, -1, "cnt"}, AggSpec{AggFunc::kSum, 1, "total"}});
  std::vector<OpQuery> queries{{0, nullptr, nullptr, -1}, {1, nullptr, nullptr, -1}};
  std::vector<BatchRef> inputs;
  inputs.push_back(std::move(in));
  WorkStats stats;
  DQBatch out = op.RunCycle(std::move(inputs), queries, Ctx(), &stats);

  auto rows0 = SortedTuples(out.RowsFor(0));
  ASSERT_EQ(rows0.size(), 2u);
  EXPECT_EQ(rows0[0][0].AsInt(), 1);          // country 1
  EXPECT_EQ(rows0[0][1].AsInt(), 2);          // count 2
  EXPECT_DOUBLE_EQ(rows0[0][2].AsDouble(), 15.0);
  auto rows1 = SortedTuples(out.RowsFor(1));
  ASSERT_EQ(rows1.size(), 2u);
  EXPECT_EQ(rows1[0][1].AsInt(), 1);          // Q1 saw only one row in country 1
  EXPECT_DOUBLE_EQ(rows1[0][2].AsDouble(), 10.0);
}

TEST(GroupByOpTest, PerQueryHaving) {
  auto schema = Schema::Make({{"k", ValueType::kInt}, {"v", ValueType::kInt}});
  DQBatch in(schema);
  for (int i = 0; i < 8; ++i) {
    in.Push({Value::Int(i % 2), Value::Int(i)}, QueryIdSet{0, 1});
  }
  GroupByOp op(schema, {0}, {AggSpec{AggFunc::kCount, -1, "cnt"}});
  // Output schema: (k, cnt). Q0: HAVING cnt > 100 (drops all); Q1: cnt >= 4.
  std::vector<OpQuery> queries{
      {0, nullptr, Expr::Gt(Expr::Column(1), Expr::Literal(Value::Int(100))), -1},
      {1, nullptr, Expr::Ge(Expr::Column(1), Expr::Literal(Value::Int(4))), -1}};
  std::vector<BatchRef> inputs;
  inputs.push_back(std::move(in));
  DQBatch out = op.RunCycle(std::move(inputs), queries, Ctx(), nullptr);
  EXPECT_TRUE(out.RowsFor(0).empty());
  EXPECT_EQ(out.RowsFor(1).size(), 2u);
}

TEST(GroupByOpTest, MinMaxAvg) {
  auto schema = Schema::Make({{"k", ValueType::kInt}, {"v", ValueType::kInt}});
  DQBatch in(schema);
  in.Push({Value::Int(1), Value::Int(4)}, QueryIdSet{0});
  in.Push({Value::Int(1), Value::Int(8)}, QueryIdSet{0});
  GroupByOp op(schema, {0},
               {AggSpec{AggFunc::kMin, 1, "mn"}, AggSpec{AggFunc::kMax, 1, "mx"},
                AggSpec{AggFunc::kAvg, 1, "avg"}});
  std::vector<OpQuery> queries{{0, nullptr, nullptr, -1}};
  std::vector<BatchRef> inputs;
  inputs.push_back(std::move(in));
  DQBatch out = op.RunCycle(std::move(inputs), queries, Ctx(), nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.tuples[0][1].AsInt(), 4);
  EXPECT_EQ(out.tuples[0][2].AsInt(), 8);
  EXPECT_DOUBLE_EQ(out.tuples[0][3].AsDouble(), 6.0);
}

// --- filter / distinct / project / union -------------------------------------------

TEST(FilterOpTest, PerQueryPredicates) {
  auto schema = RSchema();
  DQBatch in(schema);
  for (int i = 0; i < 6; ++i) {
    in.Push({Value::Int(i), Value::Int(i * 10)}, QueryIdSet{0, 1});
  }
  FilterOp op(schema);
  std::vector<OpQuery> queries{
      {0, Expr::Lt(Expr::Column(0), Expr::Literal(Value::Int(2))), nullptr, -1},
      {1, Expr::Ge(Expr::Column(0), Expr::Literal(Value::Int(4))), nullptr, -1}};
  std::vector<BatchRef> inputs;
  inputs.push_back(std::move(in));
  WorkStats stats;
  DQBatch out = op.RunCycle(std::move(inputs), queries, Ctx(), &stats);
  EXPECT_EQ(out.RowsFor(0).size(), 2u);
  EXPECT_EQ(out.RowsFor(1).size(), 2u);
  // Rows relevant to neither query are dropped entirely.
  EXPECT_EQ(out.size(), 4u);
  // Each (tuple, subscribed query) pair evaluated once: 6 tuples × 2 queries.
  EXPECT_EQ(stats.predicate_evals, 12u);
}

TEST(FilterOpTest, SharedPredicateEvaluatedOncePerTuple) {
  auto schema = RSchema();
  DQBatch in(schema);
  for (int i = 0; i < 4; ++i) in.Push({Value::Int(i), Value::Int(0)}, QueryIdSet{0, 1, 2});
  FilterOp op(schema, Expr::Lt(Expr::Column(0), Expr::Literal(Value::Int(2))));
  std::vector<OpQuery> queries{{0, nullptr, nullptr, -1},
                               {1, nullptr, nullptr, -1},
                               {2, nullptr, nullptr, -1}};
  std::vector<BatchRef> inputs;
  inputs.push_back(std::move(in));
  WorkStats stats;
  DQBatch out = op.RunCycle(std::move(inputs), queries, Ctx(), &stats);
  EXPECT_EQ(out.size(), 2u);
  // Shared predicate: 4 evaluations (one per tuple), NOT 12.
  EXPECT_EQ(stats.predicate_evals, 4u);
}

TEST(DistinctOpTest, MergesDuplicatesAndUnionsIds) {
  auto schema = RSchema();
  DQBatch in(schema);
  in.Push({Value::Int(1), Value::Int(1)}, QueryIdSet{0});
  in.Push({Value::Int(1), Value::Int(1)}, QueryIdSet{1});
  in.Push({Value::Int(2), Value::Int(2)}, QueryIdSet{0});
  DistinctOp op(schema);
  std::vector<OpQuery> queries{{0, nullptr, nullptr, -1}, {1, nullptr, nullptr, -1}};
  std::vector<BatchRef> inputs;
  inputs.push_back(std::move(in));
  DQBatch out = op.RunCycle(std::move(inputs), queries, Ctx(), nullptr);
  EXPECT_EQ(out.size(), 2u);  // physical: the duplicate collapsed
  EXPECT_EQ(out.RowsFor(0).size(), 2u);
  EXPECT_EQ(out.RowsFor(1).size(), 1u);
}

TEST(ProjectOpTest, ReordersColumns) {
  auto schema = RSchema();
  DQBatch in(schema);
  in.Push({Value::Int(7), Value::Int(70)}, QueryIdSet{0});
  ProjectOp op(schema, {1, 0});
  std::vector<OpQuery> queries{{0, nullptr, nullptr, -1}};
  std::vector<BatchRef> inputs;
  inputs.push_back(std::move(in));
  DQBatch out = op.RunCycle(std::move(inputs), queries, Ctx(), nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.tuples[0][0].AsInt(), 70);
  EXPECT_EQ(out.tuples[0][1].AsInt(), 7);
  EXPECT_EQ(out.schema->column(0).name, "city");
}

TEST(UnionOpTest, ConcatenatesInputs) {
  auto schema = RSchema();
  DQBatch a(schema), b(schema);
  a.Push({Value::Int(1), Value::Int(1)}, QueryIdSet{0});
  b.Push({Value::Int(2), Value::Int(2)}, QueryIdSet{0});
  UnionOp op(schema);
  std::vector<OpQuery> queries{{0, nullptr, nullptr, -1}};
  std::vector<BatchRef> inputs;
  inputs.push_back(std::move(a));
  inputs.push_back(std::move(b));
  DQBatch out = op.RunCycle(std::move(inputs), queries, Ctx(), nullptr);
  EXPECT_EQ(out.RowsFor(0).size(), 2u);
}

// --- scan / probe / index join over real tables --------------------------------------

class TableOpsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    items_ = std::make_unique<Table>(
        "items", Schema::Make({{"i_id", ValueType::kInt},
                               {"i_cat", ValueType::kInt},
                               {"i_price", ValueType::kInt}}));
    items_->CreateIndex("items_id", "i_id");
    for (int i = 0; i < 30; ++i) {
      items_->Insert({Value::Int(i), Value::Int(i % 3), Value::Int(i * 10)}, 1);
    }
  }
  std::unique_ptr<Table> items_;
};

TEST_F(TableOpsFixture, ScanOpAnnotates) {
  ScanOp op(items_.get());
  std::vector<OpQuery> queries{
      {0, Expr::Eq(Expr::Column(1), Expr::Literal(Value::Int(0))), nullptr, -1},
      {1, Expr::Lt(Expr::Column(0), Expr::Literal(Value::Int(3))), nullptr, -1}};
  WorkStats stats;
  DQBatch out = op.RunCycle({}, queries, Ctx(), &stats);
  EXPECT_EQ(out.RowsFor(0).size(), 10u);
  EXPECT_EQ(out.RowsFor(1).size(), 3u);
  EXPECT_EQ(stats.rows_scanned, 30u);
}

TEST_F(TableOpsFixture, ProbeOpSharedLookups) {
  ProbeOp op(items_.get(), "items_id");
  // Q0 and Q1 probe the same key; Q2 a different one.
  std::vector<OpQuery> queries{
      {0, Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(5))), nullptr, -1},
      {1, Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(5))), nullptr, -1},
      {2, Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(9))), nullptr, -1}};
  WorkStats stats;
  DQBatch out = op.RunCycle({}, queries, Ctx(), &stats);
  EXPECT_EQ(out.size(), 2u);  // two distinct rows
  EXPECT_EQ(out.RowsFor(0).size(), 1u);
  EXPECT_EQ(out.RowsFor(1).size(), 1u);
  EXPECT_EQ(out.RowsFor(2).size(), 1u);
  // The row for key 5 carries both query ids (emitted once).
  bool found = false;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out.tuples[i][0].AsInt() == 5) {
      EXPECT_EQ(out.qids[i].ids(), (std::vector<QueryId>{0, 1}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TableOpsFixture, ProbeOpRangeAccess) {
  ProbeOp op(items_.get(), "items_id");
  std::vector<OpQuery> queries{
      {0,
       Expr::And({Expr::Ge(Expr::Column(0), Expr::Literal(Value::Int(10))),
                  Expr::Lt(Expr::Column(0), Expr::Literal(Value::Int(15)))}),
       nullptr, -1}};
  DQBatch out = op.RunCycle({}, queries, Ctx(), nullptr);
  EXPECT_EQ(out.RowsFor(0).size(), 5u);
}

TEST_F(TableOpsFixture, IndexJoinOpSharedLookupCache) {
  auto outer_schema = Schema::Make({{"o_item", ValueType::kInt},
                                    {"o_qty", ValueType::kInt}});
  DQBatch outer(outer_schema);
  // Three outer tuples share key 4: the B-tree is probed once.
  outer.Push({Value::Int(4), Value::Int(1)}, QueryIdSet{0});
  outer.Push({Value::Int(4), Value::Int(2)}, QueryIdSet{1});
  outer.Push({Value::Int(4), Value::Int(3)}, QueryIdSet{0});
  outer.Push({Value::Int(9), Value::Int(4)}, QueryIdSet{1});
  IndexJoinOp op(outer_schema, 0, items_.get(), "items_id", "o", "i");
  std::vector<OpQuery> queries{{0, nullptr, nullptr, -1}, {1, nullptr, nullptr, -1}};
  std::vector<BatchRef> inputs;
  inputs.push_back(std::move(outer));
  WorkStats stats;
  DQBatch out = op.RunCycle(std::move(inputs), queries, Ctx(), &stats);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(stats.index_lookups, 2u);  // distinct keys only
  EXPECT_EQ(out.RowsFor(0).size(), 2u);
  EXPECT_EQ(out.RowsFor(1).size(), 2u);
  EXPECT_EQ(out.schema->column(0).name, "o.o_item");
  EXPECT_EQ(out.schema->column(2).name, "i.i_id");
}

// --- router -------------------------------------------------------------------------

TEST(RouterTest, SplitsByQueryId) {
  DQBatch b(RSchema());
  b.Push({Value::Int(1), Value::Int(1)}, QueryIdSet{0, 1});
  b.Push({Value::Int(2), Value::Int(2)}, QueryIdSet{1});
  WorkStats stats;
  auto routed = RouteByQueryId(b, &stats);
  EXPECT_EQ(routed[0].size(), 1u);
  EXPECT_EQ(routed[1].size(), 2u);
  EXPECT_EQ(stats.qid_elems, 3u);
}

// --- property: shared ops equal per-query reference -----------------------------------

TEST(SharedOpsProperty, JoinSortTopNMatchReference) {
  Rng rng(2024);
  auto r = RSchema();
  auto s = SSchema();
  for (int round = 0; round < 15; ++round) {
    const int nq = static_cast<int>(rng.Uniform(1, 12));
    const int nl = static_cast<int>(rng.Uniform(0, 80));
    const int nr = static_cast<int>(rng.Uniform(0, 80));
    DQBatch left(r), right(s);
    // Per-query membership mimics upstream per-query predicates.
    std::vector<std::vector<Tuple>> left_by_q(nq), right_by_q(nq);
    for (int i = 0; i < nl; ++i) {
      Tuple t{Value::Int(rng.Uniform(0, 12)), Value::Int(rng.Uniform(0, 100))};
      QueryIdSet qs;
      for (QueryId q = 0; q < static_cast<QueryId>(nq); ++q) {
        if (rng.Bernoulli(0.35)) {
          qs.Insert(q);
          left_by_q[q].push_back(t);
        }
      }
      if (!qs.empty()) left.Push(t, qs);
    }
    for (int i = 0; i < nr; ++i) {
      Tuple t{Value::Int(rng.Uniform(0, 12)), Value::Int(rng.Uniform(0, 100))};
      QueryIdSet qs;
      for (QueryId q = 0; q < static_cast<QueryId>(nq); ++q) {
        if (rng.Bernoulli(0.35)) {
          qs.Insert(q);
          right_by_q[q].push_back(t);
        }
      }
      if (!qs.empty()) right.Push(t, qs);
    }

    std::vector<OpQuery> queries;
    for (QueryId q = 0; q < static_cast<QueryId>(nq); ++q) {
      queries.push_back({q, nullptr, nullptr, -1});
    }
    HashJoinOp join(r, s, 0, 0);
    std::vector<BatchRef> inputs;
    inputs.push_back(std::move(left));
    inputs.push_back(std::move(right));
    DQBatch joined = join.RunCycle(std::move(inputs), queries, Ctx(), nullptr);

    for (QueryId q = 0; q < static_cast<QueryId>(nq); ++q) {
      // Reference: the small per-query join.
      std::vector<Tuple> expect;
      for (const Tuple& lt : left_by_q[q]) {
        for (const Tuple& rt : right_by_q[q]) {
          if (lt[0].Compare(rt[0]) == 0) expect.push_back(ConcatTuples(lt, rt));
        }
      }
      EXPECT_EQ(SortedTuples(joined.RowsFor(q)), SortedTuples(expect))
          << "round " << round << " q " << q;
    }
  }
}

}  // namespace
}  // namespace shareddb
