// Serial-vs-parallel equivalence: the morsel-parallel ClockScan, the
// parallel partitioned scan, the parallel sort, and the parallel hash join
// must produce batches IDENTICAL to their serial paths — same rows, same
// order, same annotations — across worker counts, plus matching totals for
// every deterministic work counter. (Counters that measure memoization hits
// — pred.matches, qid_elems — legitimately differ: each worker interns its
// own annotation sets.)

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "api/server.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/ops/hash_join_op.h"
#include "core/ops/sort_op.h"
#include "core/plan_builder.h"
#include "runtime/task_pool.h"
#include "runtime/threaded_runtime.h"
#include "storage/catalog.h"
#include "storage/clock_scan.h"
#include "storage/partition.h"
#include "testing_util.h"

namespace shareddb {
namespace {

const std::vector<size_t> kWorkerCounts = {1, 2, 4, 8};

/// A ParallelContext with a low split threshold so small test tables
/// exercise the parallel paths.
ParallelContext MakeCtx(TaskPool* pool) {
  ParallelContext pc;
  pc.pool = pool;
  pc.min_rows_per_task = 16;
  return pc;
}

// --- ClockScan ---------------------------------------------------------------

/// Fresh table (id INT, val INT, name STRING) with `rows` deterministic rows
/// and small segments so there are many morsels.
std::unique_ptr<Catalog> MakeScanCatalog(size_t rows) {
  auto catalog = std::make_unique<Catalog>();
  Table* t = catalog->CreateTable(
      "t", Schema::Make({{"id", ValueType::kInt},
                         {"val", ValueType::kInt},
                         {"name", ValueType::kString}}));
  t->set_rows_per_segment(64);
  Rng rng(7);
  for (size_t i = 0; i < rows; ++i) {
    t->Insert({Value::Int(static_cast<int64_t>(i)), Value::Int(rng.Uniform(0, 99)),
               Value::Str("n" + std::to_string(i % 37))},
              1);
  }
  catalog->snapshots().Reset(1);
  return catalog;
}

/// A mixed query batch: equality anchors, shared ranges, a residual LIKE,
/// and a match-all subscription.
std::vector<ScanQuerySpec> MakeScanQueries() {
  std::vector<ScanQuerySpec> specs;
  QueryId id = 0;
  for (int v = 0; v < 20; ++v) {
    specs.push_back(
        {id++, Expr::Eq(Expr::Column(1), Expr::Literal(Value::Int(v * 5)))});
  }
  for (int lo = 0; lo < 3; ++lo) {
    specs.push_back(
        {id++,
         Expr::And({Expr::Ge(Expr::Column(1), Expr::Literal(Value::Int(lo * 30))),
                    Expr::Lt(Expr::Column(1),
                             Expr::Literal(Value::Int(lo * 30 + 15)))})});
  }
  specs.push_back({id++, Expr::Like(Expr::Column(2), "%n1%")});
  specs.push_back({id++, nullptr});  // match-all
  return specs;
}

std::vector<UpdateOp> MakeScanUpdates() {
  std::vector<UpdateOp> updates;
  UpdateOp ins;
  ins.kind = UpdateKind::kInsert;
  ins.row = {Value::Int(100000), Value::Int(5), Value::Str("fresh")};
  updates.push_back(ins);
  UpdateOp upd;
  upd.kind = UpdateKind::kUpdate;
  upd.where = Expr::Eq(Expr::Column(1), Expr::Literal(Value::Int(10)));
  upd.sets = {{1, Expr::Literal(Value::Int(11))}};
  updates.push_back(upd);
  return updates;
}

TEST(ParallelEquivalence, ClockScanMatchesSerial) {
  constexpr size_t kRows = 2000;
  // Serial reference (no parallel context).
  auto serial_cat = MakeScanCatalog(kRows);
  ClockScan serial_scan(serial_cat->MustGetTable("t"));
  ClockScanStats serial_stats;
  const DQBatch expect = serial_scan.RunCycle(MakeScanQueries(), MakeScanUpdates(),
                                              1, 2, &serial_stats);
  ASSERT_GT(expect.size(), 0u);

  for (const size_t workers : kWorkerCounts) {
    TaskPool pool(workers);
    const ParallelContext pc = MakeCtx(&pool);
    auto cat = MakeScanCatalog(kRows);
    ClockScan scan(cat->MustGetTable("t"));
    ClockScanStats stats;
    const DQBatch got = scan.RunCycle(MakeScanQueries(), MakeScanUpdates(), 1, 2,
                                      &stats, &pc);
    ExpectBatchesIdentical(expect, got,
                           "clockscan w=" + std::to_string(workers));
    EXPECT_EQ(stats.rows_scanned, serial_stats.rows_scanned);
    EXPECT_EQ(stats.updates_applied, serial_stats.updates_applied);
    EXPECT_EQ(stats.tuples_out, serial_stats.tuples_out);
    EXPECT_EQ(stats.pred.hash_probes, serial_stats.pred.hash_probes);
    EXPECT_EQ(stats.pred.candidates, serial_stats.pred.candidates);
  }
}

TEST(ParallelEquivalence, ClockScanMatchesSerialAcrossCycles) {
  // Several cycles: the clock hand rotates and the cached PredicateIndex is
  // reused — outputs must track the serial scan cycle for cycle.
  constexpr size_t kRows = 600;
  auto serial_cat = MakeScanCatalog(kRows);
  auto par_cat = MakeScanCatalog(kRows);
  ClockScan serial_scan(serial_cat->MustGetTable("t"));
  ClockScan par_scan(par_cat->MustGetTable("t"));
  TaskPool pool(4);
  const ParallelContext pc = MakeCtx(&pool);
  const std::vector<ScanQuerySpec> queries = MakeScanQueries();
  for (Version v = 1; v <= 5; ++v) {
    const DQBatch expect = serial_scan.RunCycle(queries, {}, v, v + 1, nullptr);
    const DQBatch got = par_scan.RunCycle(queries, {}, v, v + 1, nullptr, &pc);
    ExpectBatchesIdentical(expect, got, "cycle " + std::to_string(v));
  }
  EXPECT_EQ(par_scan.index_builds(), 1u);  // one build, four reuses
}

// --- PartitionedTable --------------------------------------------------------

std::unique_ptr<PartitionedTable> MakePartitioned(size_t rows, size_t parts) {
  auto pt = std::make_unique<PartitionedTable>(
      "pt",
      Schema::Make({{"id", ValueType::kInt},
                    {"val", ValueType::kInt},
                    {"name", ValueType::kString}}),
      /*key_column=*/0, parts);
  Rng rng(13);
  for (size_t i = 0; i < rows; ++i) {
    pt->Insert({Value::Int(static_cast<int64_t>(i)), Value::Int(rng.Uniform(0, 99)),
                Value::Str("p" + std::to_string(i % 23))},
               1);
  }
  return pt;
}

TEST(ParallelEquivalence, PartitionedScanMatchesSerial) {
  constexpr size_t kRows = 1200;
  constexpr size_t kParts = 4;
  auto serial_pt = MakePartitioned(kRows, kParts);
  std::vector<ClockScanStats> serial_stats;
  const DQBatch expect = serial_pt->RunScanCycle(MakeScanQueries(),
                                                 MakeScanUpdates(), 1, 2,
                                                 &serial_stats);
  ASSERT_GT(expect.size(), 0u);

  for (const size_t workers : kWorkerCounts) {
    TaskPool pool(workers);
    const ParallelContext pc = MakeCtx(&pool);
    auto pt = MakePartitioned(kRows, kParts);
    std::vector<ClockScanStats> stats;
    const DQBatch got = pt->RunScanCycle(MakeScanQueries(), MakeScanUpdates(), 1,
                                         2, &stats, &pc);
    ExpectBatchesIdentical(expect, got,
                           "partitioned w=" + std::to_string(workers));
    ASSERT_EQ(stats.size(), serial_stats.size());
    for (size_t p = 0; p < stats.size(); ++p) {
      EXPECT_EQ(stats[p].rows_scanned, serial_stats[p].rows_scanned) << p;
      EXPECT_EQ(stats[p].updates_applied, serial_stats[p].updates_applied) << p;
      EXPECT_EQ(stats[p].tuples_out, serial_stats[p].tuples_out) << p;
    }
  }
}

// --- SortOp ------------------------------------------------------------------

/// Batch of `rows` tuples with heavy key duplication (exercises stability)
/// and randomized qid subsets.
DQBatch MakeSortInput(const SchemaPtr& schema, size_t rows, int num_queries) {
  DQBatch in(schema);
  Rng rng(3);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<QueryId> ids;
    for (int q = 0; q < num_queries; ++q) {
      if (rng.Bernoulli(0.4)) ids.push_back(static_cast<QueryId>(q));
    }
    in.Push({Value::Int(static_cast<int64_t>(i)), Value::Int(rng.Uniform(0, 20)),
             Value::Str("s" + std::to_string(i % 11))},
            QueryIdSet::FromSorted(std::move(ids)));
  }
  return in;
}

TEST(ParallelEquivalence, SortMatchesSerial) {
  const SchemaPtr schema = Schema::Make({{"id", ValueType::kInt},
                                         {"val", ValueType::kInt},
                                         {"name", ValueType::kString}});
  constexpr size_t kRows = 3000;
  constexpr int kQueries = 12;
  // Sort on a low-cardinality key, then the string: many ties, so the
  // stable order is thoroughly exercised.
  SortOp op(schema, {{1, true}, {2, false}});
  std::vector<OpQuery> queries(kQueries);
  for (int q = 0; q < kQueries; ++q) queries[q].id = static_cast<QueryId>(q);

  CycleContext serial_ctx;
  serial_ctx.read_snapshot = 1;
  serial_ctx.write_version = 2;
  const DQBatch master = MakeSortInput(schema, kRows, kQueries);
  WorkStats serial_stats;
  std::vector<BatchRef> in0;
  in0.emplace_back(master);  // copy
  const DQBatch expect = op.RunCycle(std::move(in0), queries, serial_ctx,
                                     &serial_stats);

  for (const size_t workers : kWorkerCounts) {
    TaskPool pool(workers);
    const ParallelContext pc = MakeCtx(&pool);
    CycleContext ctx = serial_ctx;
    ctx.parallel = &pc;
    std::vector<BatchRef> in;
    in.emplace_back(master);  // copy
    WorkStats stats;
    const DQBatch got = op.RunCycle(std::move(in), queries, ctx, &stats);
    ExpectBatchesIdentical(expect, got, "sort w=" + std::to_string(workers));
    EXPECT_EQ(stats.tuples_in, serial_stats.tuples_in);
    EXPECT_EQ(stats.tuples_out, serial_stats.tuples_out);
  }
}

TEST(ParallelEquivalence, SortWithNaNAndMixedNumericsMatchesSerial) {
  // Regression: Value::Compare must be a TOTAL order. NaN doubles used to
  // compare "equal" to every number, and mixed INT/DOUBLE keys were compared
  // through a lossy double conversion — either breaks strict-weak-ordering,
  // and the parallel partition sort + k-way merge can then produce an order
  // that diverges from the serial sort.
  const SchemaPtr schema =
      Schema::Make({{"id", ValueType::kInt}, {"key", ValueType::kDouble}});
  constexpr size_t kRows = 1500;
  DQBatch master(schema);
  Rng rng(17);
  const double nan = std::nan("");
  for (size_t i = 0; i < kRows; ++i) {
    Value key;
    switch (rng.Uniform(0, 3)) {
      case 0: key = Value::Double(nan); break;
      case 1: key = Value::Double(rng.Uniform(0, 20) * 0.5); break;
      case 2: key = Value::Int(rng.Uniform(0, 10)); break;
      default: key = Value::Null(); break;
    }
    master.Push({Value::Int(static_cast<int64_t>(i)), key},
                QueryIdSet::FromSorted({0}));
  }

  SortOp op(schema, {{1, true}, {0, true}});
  std::vector<OpQuery> queries(1);
  CycleContext serial_ctx;
  serial_ctx.read_snapshot = 1;
  serial_ctx.write_version = 2;
  std::vector<BatchRef> in0;
  in0.emplace_back(master);
  const DQBatch expect = op.RunCycle(std::move(in0), queries, serial_ctx, nullptr);

  // The serial order itself must be sane: NULL first, then numerics
  // ascending, with every NaN after every non-NaN numeric.
  bool seen_nan = false;
  for (size_t i = 0; i < expect.size(); ++i) {
    const Value& k = expect.tuples[i][1];
    const bool is_nan = k.type() == ValueType::kDouble && std::isnan(k.AsDouble());
    if (is_nan) seen_nan = true;
    ASSERT_FALSE(seen_nan && !is_nan && !k.is_null()) << "row " << i;
    if (i > 0) {
      ASSERT_LE(expect.tuples[i - 1][1].Compare(expect.tuples[i][1]), 0)
          << "row " << i;
    }
  }
  ASSERT_TRUE(seen_nan);

  for (const size_t workers : kWorkerCounts) {
    TaskPool pool(workers);
    const ParallelContext pc = MakeCtx(&pool);
    CycleContext ctx = serial_ctx;
    ctx.parallel = &pc;
    std::vector<BatchRef> in;
    in.emplace_back(master);
    const DQBatch got = op.RunCycle(std::move(in), queries, ctx, nullptr);
    ExpectBatchesIdentical(expect, got, "nan sort w=" + std::to_string(workers));
  }
}

// --- HashJoinOp --------------------------------------------------------------

TEST(ParallelEquivalence, HashJoinMatchesSerial) {
  const SchemaPtr left = Schema::Make({{"uid", ValueType::kInt},
                                       {"country", ValueType::kInt}});
  const SchemaPtr right = Schema::Make({{"oid", ValueType::kInt},
                                        {"uid", ValueType::kInt},
                                        {"amount", ValueType::kInt}});
  constexpr size_t kUsers = 400;
  constexpr size_t kOrders = 2400;
  constexpr int kQueries = 10;

  DQBatch lbatch(left), rbatch(right);
  Rng rng(29);
  auto qids_for = [&](int bias) {
    std::vector<QueryId> ids;
    for (int q = 0; q < kQueries; ++q) {
      if (rng.Bernoulli(q % 2 == bias ? 0.8 : 0.3)) {
        ids.push_back(static_cast<QueryId>(q));
      }
    }
    return QueryIdSet::FromSorted(std::move(ids));
  };
  for (size_t i = 0; i < kUsers; ++i) {
    // A few NULL keys: they must never join.
    const Value key =
        i % 31 == 0 ? Value::Null() : Value::Int(static_cast<int64_t>(i));
    lbatch.Push({key, Value::Int(rng.Uniform(0, 5))}, qids_for(0));
  }
  for (size_t i = 0; i < kOrders; ++i) {
    const Value key =
        i % 53 == 0 ? Value::Null() : Value::Int(rng.Uniform(0, kUsers - 1));
    rbatch.Push({Value::Int(static_cast<int64_t>(i)), key,
                 Value::Int(rng.Uniform(1, 500))},
                qids_for(1));
  }

  HashJoinOp op(left, right, /*left_key=*/0, /*right_key=*/1,
                /*build_left=*/true, "u", "o");
  std::vector<OpQuery> queries(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    queries[q].id = static_cast<QueryId>(q);
    if (q % 3 == 0) {
      // Residual over the joined tuple: strips ids per query.
      queries[q].predicate =
          Expr::Ge(Expr::Column(4), Expr::Literal(Value::Int(100)));
    }
  }

  CycleContext serial_ctx;
  serial_ctx.read_snapshot = 1;
  serial_ctx.write_version = 2;
  std::vector<BatchRef> in0;
  in0.emplace_back(lbatch);
  in0.emplace_back(rbatch);
  WorkStats serial_stats;
  const DQBatch expect = op.RunCycle(std::move(in0), queries, serial_ctx,
                                     &serial_stats);
  ASSERT_GT(expect.size(), 0u);

  for (const size_t workers : kWorkerCounts) {
    TaskPool pool(workers);
    const ParallelContext pc = MakeCtx(&pool);
    CycleContext ctx = serial_ctx;
    ctx.parallel = &pc;
    std::vector<BatchRef> in;
    in.emplace_back(lbatch);
    in.emplace_back(rbatch);
    WorkStats stats;
    const DQBatch got = op.RunCycle(std::move(in), queries, ctx, &stats);
    ExpectBatchesIdentical(expect, got, "join w=" + std::to_string(workers));
    EXPECT_EQ(stats.hash_builds, serial_stats.hash_builds);
    EXPECT_EQ(stats.hash_probes, serial_stats.hash_probes);
    EXPECT_EQ(stats.tuples_out, serial_stats.tuples_out);
    EXPECT_EQ(stats.predicate_evals, serial_stats.predicate_evals);
  }
}

// --- End to end: a parallel engine matches a serial engine -------------------

class ParallelEngineFixture : public ::testing::Test {
 protected:
  std::unique_ptr<Catalog> MakeCatalog() {
    auto cat = std::make_unique<Catalog>();
    Table* users = cat->CreateTable(
        "users", Schema::Make({{"user_id", ValueType::kInt},
                               {"country", ValueType::kInt},
                               {"account", ValueType::kInt}}));
    Table* orders = cat->CreateTable(
        "orders", Schema::Make({{"order_id", ValueType::kInt},
                                {"user_id", ValueType::kInt},
                                {"amount", ValueType::kInt}}));
    users->set_rows_per_segment(32);
    orders->set_rows_per_segment(32);
    for (int i = 0; i < 300; ++i) {
      users->Insert({Value::Int(i), Value::Int(i % 5), Value::Int(i * 10)}, 1);
    }
    for (int i = 0; i < 900; ++i) {
      orders->Insert({Value::Int(i), Value::Int(i % 300), Value::Int(i % 173)}, 1);
    }
    cat->snapshots().Reset(1);
    return cat;
  }

  std::unique_ptr<GlobalPlan> BuildPlan(Catalog* cat) {
    GlobalPlanBuilder b(cat);
    const SchemaPtr us = cat->MustGetTable("users")->schema();
    b.AddQuery("user_orders",
               logical::HashJoin(
                   logical::Scan("users", Expr::Eq(Expr::Column(*us, "user_id"),
                                                   Expr::Param(0))),
                   logical::Scan("orders"), "user_id", "user_id", nullptr, "u", "o"));
    b.AddQuery("big_orders",
               logical::Sort(logical::Scan("orders",
                                           Expr::Ge(Expr::Column(2), Expr::Param(0))),
                             {{"amount", false}, {"order_id", true}}));
    b.AddUpdate("bump", "users",
                {{"account", Expr::Add(Expr::Column(2), Expr::Param(1))}},
                Expr::Eq(Expr::Column(0), Expr::Param(0)));
    return b.Build();
  }
};

TEST_F(ParallelEngineFixture, ParallelEngineMatchesSerialAcrossBatches) {
  auto serial_cat = MakeCatalog();
  auto par_cat = MakeCatalog();
  auto serial_plan = BuildPlan(serial_cat.get());
  auto par_plan = BuildPlan(par_cat.get());
  GlobalPlan* par_raw = par_plan.get();

  Engine serial_engine(std::move(serial_plan));
  EngineOptions popts;
  popts.parallel.num_workers = 4;
  popts.parallel.min_rows_per_task = 16;  // small tables must still split
  Engine par_engine(std::move(par_plan), std::move(popts),
                    std::make_unique<ThreadedRuntime>(par_raw,
                                                      /*pin_threads=*/false));
  ASSERT_NE(par_engine.task_pool(), nullptr);
  api::ServerOptions sopts;
  sopts.start_paused = true;
  api::Server serial_server(&serial_engine, sopts);
  api::Server par_server(&par_engine, sopts);
  auto ss = serial_server.OpenSession();
  auto sp = par_server.OpenSession();

  for (int round = 0; round < 4; ++round) {
    std::vector<api::AsyncResult> fs, fp;
    for (int uid = 0; uid < 6; ++uid) {
      fs.push_back(ss->ExecuteAsync("user_orders", {Value::Int(uid)}));
      fp.push_back(sp->ExecuteAsync("user_orders", {Value::Int(uid)}));
    }
    fs.push_back(ss->ExecuteAsync("big_orders", {Value::Int(150)}));
    fp.push_back(sp->ExecuteAsync("big_orders", {Value::Int(150)}));
    fs.push_back(ss->ExecuteAsync("bump", {Value::Int(round), Value::Int(7)}));
    fp.push_back(sp->ExecuteAsync("bump", {Value::Int(round), Value::Int(7)}));
    serial_server.StepBatch();
    par_server.StepBatch();

    for (size_t i = 0; i < fs.size(); ++i) {
      ResultSet a = fs[i].Get();
      ResultSet b = fp[i].Get();
      ExpectResultsEqual(a, b,
                         "round " + std::to_string(round) + " q " + std::to_string(i));
    }
  }
}

}  // namespace
}  // namespace shareddb
