// Serial-vs-parallel equivalence: the morsel-parallel ClockScan, the
// parallel partitioned scan, the parallel sort, and the parallel hash join
// must produce batches IDENTICAL to their serial paths — same rows, same
// order, same annotations — across worker counts, plus matching totals for
// every deterministic work counter. (Counters that measure memoization hits
// — pred.matches, qid_elems — legitimately differ: each worker interns its
// own annotation sets.)

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "api/server.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/ops/distinct_op.h"
#include "core/ops/group_by_op.h"
#include "core/ops/hash_join_op.h"
#include "core/ops/index_join_op.h"
#include "core/ops/probe_op.h"
#include "core/ops/sort_op.h"
#include "core/ops/top_n_op.h"
#include "core/plan_builder.h"
#include "runtime/task_pool.h"
#include "runtime/threaded_runtime.h"
#include "storage/catalog.h"
#include "storage/clock_scan.h"
#include "storage/partition.h"
#include "testing_util.h"

namespace shareddb {
namespace {

const std::vector<size_t> kWorkerCounts = {1, 2, 4, 8};

/// A ParallelContext with a low split threshold so small test tables
/// exercise the parallel paths.
ParallelContext MakeCtx(TaskPool* pool) {
  ParallelContext pc;
  pc.pool = pool;
  pc.min_rows_per_task = 16;
  return pc;
}

// --- ClockScan ---------------------------------------------------------------

/// Fresh table (id INT, val INT, name STRING) with `rows` deterministic rows
/// and small segments so there are many morsels.
std::unique_ptr<Catalog> MakeScanCatalog(size_t rows) {
  auto catalog = std::make_unique<Catalog>();
  Table* t = catalog->CreateTable(
      "t", Schema::Make({{"id", ValueType::kInt},
                         {"val", ValueType::kInt},
                         {"name", ValueType::kString}}));
  t->set_rows_per_segment(64);
  Rng rng(7);
  for (size_t i = 0; i < rows; ++i) {
    t->Insert({Value::Int(static_cast<int64_t>(i)), Value::Int(rng.Uniform(0, 99)),
               Value::Str("n" + std::to_string(i % 37))},
              1);
  }
  catalog->snapshots().Reset(1);
  return catalog;
}

/// A mixed query batch: equality anchors, shared ranges, a residual LIKE,
/// and a match-all subscription.
std::vector<ScanQuerySpec> MakeScanQueries() {
  std::vector<ScanQuerySpec> specs;
  QueryId id = 0;
  for (int v = 0; v < 20; ++v) {
    specs.push_back(
        {id++, Expr::Eq(Expr::Column(1), Expr::Literal(Value::Int(v * 5)))});
  }
  for (int lo = 0; lo < 3; ++lo) {
    specs.push_back(
        {id++,
         Expr::And({Expr::Ge(Expr::Column(1), Expr::Literal(Value::Int(lo * 30))),
                    Expr::Lt(Expr::Column(1),
                             Expr::Literal(Value::Int(lo * 30 + 15)))})});
  }
  specs.push_back({id++, Expr::Like(Expr::Column(2), "%n1%")});
  specs.push_back({id++, nullptr});  // match-all
  return specs;
}

std::vector<UpdateOp> MakeScanUpdates() {
  std::vector<UpdateOp> updates;
  UpdateOp ins;
  ins.kind = UpdateKind::kInsert;
  ins.row = {Value::Int(100000), Value::Int(5), Value::Str("fresh")};
  updates.push_back(ins);
  UpdateOp upd;
  upd.kind = UpdateKind::kUpdate;
  upd.where = Expr::Eq(Expr::Column(1), Expr::Literal(Value::Int(10)));
  upd.sets = {{1, Expr::Literal(Value::Int(11))}};
  updates.push_back(upd);
  return updates;
}

TEST(ParallelEquivalence, ClockScanMatchesSerial) {
  constexpr size_t kRows = 2000;
  // Serial reference (no parallel context).
  auto serial_cat = MakeScanCatalog(kRows);
  ClockScan serial_scan(serial_cat->MustGetTable("t"));
  ClockScanStats serial_stats;
  const DQBatch expect = serial_scan.RunCycle(MakeScanQueries(), MakeScanUpdates(),
                                              1, 2, &serial_stats);
  ASSERT_GT(expect.size(), 0u);

  for (const size_t workers : kWorkerCounts) {
    TaskPool pool(workers);
    const ParallelContext pc = MakeCtx(&pool);
    auto cat = MakeScanCatalog(kRows);
    ClockScan scan(cat->MustGetTable("t"));
    ClockScanStats stats;
    const DQBatch got = scan.RunCycle(MakeScanQueries(), MakeScanUpdates(), 1, 2,
                                      &stats, &pc);
    ExpectBatchesIdentical(expect, got,
                           "clockscan w=" + std::to_string(workers));
    EXPECT_EQ(stats.rows_scanned, serial_stats.rows_scanned);
    EXPECT_EQ(stats.updates_applied, serial_stats.updates_applied);
    EXPECT_EQ(stats.tuples_out, serial_stats.tuples_out);
    EXPECT_EQ(stats.pred.hash_probes, serial_stats.pred.hash_probes);
    EXPECT_EQ(stats.pred.candidates, serial_stats.pred.candidates);
  }
}

TEST(ParallelEquivalence, ClockScanMatchesSerialAcrossCycles) {
  // Several cycles: the clock hand rotates and the cached PredicateIndex is
  // reused — outputs must track the serial scan cycle for cycle.
  constexpr size_t kRows = 600;
  auto serial_cat = MakeScanCatalog(kRows);
  auto par_cat = MakeScanCatalog(kRows);
  ClockScan serial_scan(serial_cat->MustGetTable("t"));
  ClockScan par_scan(par_cat->MustGetTable("t"));
  TaskPool pool(4);
  const ParallelContext pc = MakeCtx(&pool);
  const std::vector<ScanQuerySpec> queries = MakeScanQueries();
  for (Version v = 1; v <= 5; ++v) {
    const DQBatch expect = serial_scan.RunCycle(queries, {}, v, v + 1, nullptr);
    const DQBatch got = par_scan.RunCycle(queries, {}, v, v + 1, nullptr, &pc);
    ExpectBatchesIdentical(expect, got, "cycle " + std::to_string(v));
  }
  EXPECT_EQ(par_scan.index_builds(), 1u);  // one build, four reuses
}

// --- PartitionedTable --------------------------------------------------------

std::unique_ptr<PartitionedTable> MakePartitioned(size_t rows, size_t parts) {
  auto pt = std::make_unique<PartitionedTable>(
      "pt",
      Schema::Make({{"id", ValueType::kInt},
                    {"val", ValueType::kInt},
                    {"name", ValueType::kString}}),
      /*key_column=*/0, parts);
  Rng rng(13);
  for (size_t i = 0; i < rows; ++i) {
    pt->Insert({Value::Int(static_cast<int64_t>(i)), Value::Int(rng.Uniform(0, 99)),
                Value::Str("p" + std::to_string(i % 23))},
               1);
  }
  return pt;
}

TEST(ParallelEquivalence, PartitionedScanMatchesSerial) {
  constexpr size_t kRows = 1200;
  constexpr size_t kParts = 4;
  auto serial_pt = MakePartitioned(kRows, kParts);
  std::vector<ClockScanStats> serial_stats;
  const DQBatch expect = serial_pt->RunScanCycle(MakeScanQueries(),
                                                 MakeScanUpdates(), 1, 2,
                                                 &serial_stats);
  ASSERT_GT(expect.size(), 0u);

  for (const size_t workers : kWorkerCounts) {
    TaskPool pool(workers);
    const ParallelContext pc = MakeCtx(&pool);
    auto pt = MakePartitioned(kRows, kParts);
    std::vector<ClockScanStats> stats;
    const DQBatch got = pt->RunScanCycle(MakeScanQueries(), MakeScanUpdates(), 1,
                                         2, &stats, &pc);
    ExpectBatchesIdentical(expect, got,
                           "partitioned w=" + std::to_string(workers));
    ASSERT_EQ(stats.size(), serial_stats.size());
    for (size_t p = 0; p < stats.size(); ++p) {
      EXPECT_EQ(stats[p].rows_scanned, serial_stats[p].rows_scanned) << p;
      EXPECT_EQ(stats[p].updates_applied, serial_stats[p].updates_applied) << p;
      EXPECT_EQ(stats[p].tuples_out, serial_stats[p].tuples_out) << p;
    }
  }
}

// --- SortOp ------------------------------------------------------------------

/// Batch of `rows` tuples with heavy key duplication (exercises stability)
/// and randomized qid subsets.
DQBatch MakeSortInput(const SchemaPtr& schema, size_t rows, int num_queries) {
  DQBatch in(schema);
  Rng rng(3);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<QueryId> ids;
    for (int q = 0; q < num_queries; ++q) {
      if (rng.Bernoulli(0.4)) ids.push_back(static_cast<QueryId>(q));
    }
    in.Push({Value::Int(static_cast<int64_t>(i)), Value::Int(rng.Uniform(0, 20)),
             Value::Str("s" + std::to_string(i % 11))},
            QueryIdSet::FromSorted(std::move(ids)));
  }
  return in;
}

TEST(ParallelEquivalence, SortMatchesSerial) {
  const SchemaPtr schema = Schema::Make({{"id", ValueType::kInt},
                                         {"val", ValueType::kInt},
                                         {"name", ValueType::kString}});
  constexpr size_t kRows = 3000;
  constexpr int kQueries = 12;
  // Sort on a low-cardinality key, then the string: many ties, so the
  // stable order is thoroughly exercised.
  SortOp op(schema, {{1, true}, {2, false}});
  std::vector<OpQuery> queries(kQueries);
  for (int q = 0; q < kQueries; ++q) queries[q].id = static_cast<QueryId>(q);

  CycleContext serial_ctx;
  serial_ctx.read_snapshot = 1;
  serial_ctx.write_version = 2;
  const DQBatch master = MakeSortInput(schema, kRows, kQueries);
  WorkStats serial_stats;
  std::vector<BatchRef> in0;
  in0.emplace_back(master);  // copy
  const DQBatch expect = op.RunCycle(std::move(in0), queries, serial_ctx,
                                     &serial_stats);

  for (const size_t workers : kWorkerCounts) {
    TaskPool pool(workers);
    const ParallelContext pc = MakeCtx(&pool);
    CycleContext ctx = serial_ctx;
    ctx.parallel = &pc;
    std::vector<BatchRef> in;
    in.emplace_back(master);  // copy
    WorkStats stats;
    const DQBatch got = op.RunCycle(std::move(in), queries, ctx, &stats);
    ExpectBatchesIdentical(expect, got, "sort w=" + std::to_string(workers));
    EXPECT_EQ(stats.tuples_in, serial_stats.tuples_in);
    EXPECT_EQ(stats.tuples_out, serial_stats.tuples_out);
  }
}

TEST(ParallelEquivalence, SortWithNaNAndMixedNumericsMatchesSerial) {
  // Regression: Value::Compare must be a TOTAL order. NaN doubles used to
  // compare "equal" to every number, and mixed INT/DOUBLE keys were compared
  // through a lossy double conversion — either breaks strict-weak-ordering,
  // and the parallel partition sort + k-way merge can then produce an order
  // that diverges from the serial sort.
  const SchemaPtr schema =
      Schema::Make({{"id", ValueType::kInt}, {"key", ValueType::kDouble}});
  constexpr size_t kRows = 1500;
  DQBatch master(schema);
  Rng rng(17);
  const double nan = std::nan("");
  for (size_t i = 0; i < kRows; ++i) {
    Value key;
    switch (rng.Uniform(0, 3)) {
      case 0: key = Value::Double(nan); break;
      case 1: key = Value::Double(rng.Uniform(0, 20) * 0.5); break;
      case 2: key = Value::Int(rng.Uniform(0, 10)); break;
      default: key = Value::Null(); break;
    }
    master.Push({Value::Int(static_cast<int64_t>(i)), key},
                QueryIdSet::FromSorted({0}));
  }

  SortOp op(schema, {{1, true}, {0, true}});
  std::vector<OpQuery> queries(1);
  CycleContext serial_ctx;
  serial_ctx.read_snapshot = 1;
  serial_ctx.write_version = 2;
  std::vector<BatchRef> in0;
  in0.emplace_back(master);
  const DQBatch expect = op.RunCycle(std::move(in0), queries, serial_ctx, nullptr);

  // The serial order itself must be sane: NULL first, then numerics
  // ascending, with every NaN after every non-NaN numeric.
  bool seen_nan = false;
  for (size_t i = 0; i < expect.size(); ++i) {
    const Value& k = expect.tuples[i][1];
    const bool is_nan = k.type() == ValueType::kDouble && std::isnan(k.AsDouble());
    if (is_nan) seen_nan = true;
    ASSERT_FALSE(seen_nan && !is_nan && !k.is_null()) << "row " << i;
    if (i > 0) {
      ASSERT_LE(expect.tuples[i - 1][1].Compare(expect.tuples[i][1]), 0)
          << "row " << i;
    }
  }
  ASSERT_TRUE(seen_nan);

  for (const size_t workers : kWorkerCounts) {
    TaskPool pool(workers);
    const ParallelContext pc = MakeCtx(&pool);
    CycleContext ctx = serial_ctx;
    ctx.parallel = &pc;
    std::vector<BatchRef> in;
    in.emplace_back(master);
    const DQBatch got = op.RunCycle(std::move(in), queries, ctx, nullptr);
    ExpectBatchesIdentical(expect, got, "nan sort w=" + std::to_string(workers));
  }
}

// --- HashJoinOp --------------------------------------------------------------

TEST(ParallelEquivalence, HashJoinMatchesSerial) {
  const SchemaPtr left = Schema::Make({{"uid", ValueType::kInt},
                                       {"country", ValueType::kInt}});
  const SchemaPtr right = Schema::Make({{"oid", ValueType::kInt},
                                        {"uid", ValueType::kInt},
                                        {"amount", ValueType::kInt}});
  constexpr size_t kUsers = 400;
  constexpr size_t kOrders = 2400;
  constexpr int kQueries = 10;

  DQBatch lbatch(left), rbatch(right);
  Rng rng(29);
  auto qids_for = [&](int bias) {
    std::vector<QueryId> ids;
    for (int q = 0; q < kQueries; ++q) {
      if (rng.Bernoulli(q % 2 == bias ? 0.8 : 0.3)) {
        ids.push_back(static_cast<QueryId>(q));
      }
    }
    return QueryIdSet::FromSorted(std::move(ids));
  };
  for (size_t i = 0; i < kUsers; ++i) {
    // A few NULL keys: they must never join.
    const Value key =
        i % 31 == 0 ? Value::Null() : Value::Int(static_cast<int64_t>(i));
    lbatch.Push({key, Value::Int(rng.Uniform(0, 5))}, qids_for(0));
  }
  for (size_t i = 0; i < kOrders; ++i) {
    const Value key =
        i % 53 == 0 ? Value::Null() : Value::Int(rng.Uniform(0, kUsers - 1));
    rbatch.Push({Value::Int(static_cast<int64_t>(i)), key,
                 Value::Int(rng.Uniform(1, 500))},
                qids_for(1));
  }

  HashJoinOp op(left, right, /*left_key=*/0, /*right_key=*/1,
                /*build_left=*/true, "u", "o");
  std::vector<OpQuery> queries(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    queries[q].id = static_cast<QueryId>(q);
    if (q % 3 == 0) {
      // Residual over the joined tuple: strips ids per query.
      queries[q].predicate =
          Expr::Ge(Expr::Column(4), Expr::Literal(Value::Int(100)));
    }
  }

  CycleContext serial_ctx;
  serial_ctx.read_snapshot = 1;
  serial_ctx.write_version = 2;
  std::vector<BatchRef> in0;
  in0.emplace_back(lbatch);
  in0.emplace_back(rbatch);
  WorkStats serial_stats;
  const DQBatch expect = op.RunCycle(std::move(in0), queries, serial_ctx,
                                     &serial_stats);
  ASSERT_GT(expect.size(), 0u);

  for (const size_t workers : kWorkerCounts) {
    TaskPool pool(workers);
    const ParallelContext pc = MakeCtx(&pool);
    CycleContext ctx = serial_ctx;
    ctx.parallel = &pc;
    std::vector<BatchRef> in;
    in.emplace_back(lbatch);
    in.emplace_back(rbatch);
    WorkStats stats;
    const DQBatch got = op.RunCycle(std::move(in), queries, ctx, &stats);
    ExpectBatchesIdentical(expect, got, "join w=" + std::to_string(workers));
    EXPECT_EQ(stats.hash_builds, serial_stats.hash_builds);
    EXPECT_EQ(stats.hash_probes, serial_stats.hash_probes);
    EXPECT_EQ(stats.tuples_out, serial_stats.tuples_out);
    EXPECT_EQ(stats.predicate_evals, serial_stats.predicate_evals);
  }
}

// --- GroupByOp ---------------------------------------------------------------

TEST(ParallelEquivalence, GroupByMatchesSerial) {
  const SchemaPtr schema = Schema::Make({{"id", ValueType::kInt},
                                         {"val", ValueType::kInt},
                                         {"name", ValueType::kString}});
  constexpr size_t kRows = 3000;
  constexpr int kQueries = 12;
  // Low-cardinality group key (21 values) so groups are fat, plus COUNT,
  // SUM and AVG (floating-point accumulation order matters) and a MIN over
  // the string column.
  GroupByOp op(schema, {1},
               {{AggFunc::kCount, -1, "cnt"},
                {AggFunc::kSum, 0, "sum_id"},
                {AggFunc::kAvg, 0, "avg_id"},
                {AggFunc::kMin, 2, "min_name"}});
  std::vector<OpQuery> queries(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    queries[q].id = static_cast<QueryId>(q);
    if (q % 4 == 0) {
      // HAVING cnt >= 40 over the output schema (val, cnt, ...).
      queries[q].having =
          Expr::Ge(Expr::Column(1), Expr::Literal(Value::Int(40)));
    }
  }

  CycleContext serial_ctx;
  serial_ctx.read_snapshot = 1;
  serial_ctx.write_version = 2;
  const DQBatch master = MakeSortInput(schema, kRows, kQueries);
  std::vector<BatchRef> in0;
  in0.emplace_back(master);
  WorkStats serial_stats;
  const DQBatch expect = op.RunCycle(std::move(in0), queries, serial_ctx,
                                     &serial_stats);
  ASSERT_GT(expect.size(), 0u);

  for (const size_t workers : kWorkerCounts) {
    TaskPool pool(workers);
    const ParallelContext pc = MakeCtx(&pool);
    CycleContext ctx = serial_ctx;
    ctx.parallel = &pc;
    std::vector<BatchRef> in;
    in.emplace_back(master);
    WorkStats stats;
    const DQBatch got = op.RunCycle(std::move(in), queries, ctx, &stats);
    ExpectBatchesIdentical(expect, got, "groupby w=" + std::to_string(workers));
    EXPECT_EQ(stats.tuples_in, serial_stats.tuples_in);
    EXPECT_EQ(stats.tuples_out, serial_stats.tuples_out);
    EXPECT_EQ(stats.hash_builds, serial_stats.hash_builds);
    EXPECT_EQ(stats.hash_probes, serial_stats.hash_probes);
    EXPECT_EQ(stats.agg_updates, serial_stats.agg_updates);
    EXPECT_EQ(stats.predicate_evals, serial_stats.predicate_evals);
    EXPECT_EQ(stats.qid_elems, serial_stats.qid_elems);
  }
}

// --- DistinctOp --------------------------------------------------------------

TEST(ParallelEquivalence, DistinctMatchesSerial) {
  const SchemaPtr schema = Schema::Make({{"id", ValueType::kInt},
                                         {"val", ValueType::kInt},
                                         {"name", ValueType::kString}});
  constexpr size_t kRows = 3000;
  constexpr int kQueries = 10;
  // Tuples drawn from a small value space: heavy duplication, so the
  // annotation unions and the first-occurrence order both get exercised.
  DQBatch master(schema);
  Rng rng(41);
  for (size_t i = 0; i < kRows; ++i) {
    std::vector<QueryId> ids;
    for (int q = 0; q < kQueries; ++q) {
      if (rng.Bernoulli(0.35)) ids.push_back(static_cast<QueryId>(q));
    }
    master.Push({Value::Int(static_cast<int64_t>(i % 40)),
                 Value::Int(static_cast<int64_t>(i % 7)),
                 Value::Str("d" + std::to_string(i % 13))},
                QueryIdSet::FromSorted(std::move(ids)));
  }
  DistinctOp op(schema);
  std::vector<OpQuery> queries(kQueries);
  for (int q = 0; q < kQueries; ++q) queries[q].id = static_cast<QueryId>(q);

  CycleContext serial_ctx;
  serial_ctx.read_snapshot = 1;
  serial_ctx.write_version = 2;
  std::vector<BatchRef> in0;
  in0.emplace_back(master);
  WorkStats serial_stats;
  const DQBatch expect = op.RunCycle(std::move(in0), queries, serial_ctx,
                                     &serial_stats);
  ASSERT_GT(expect.size(), 0u);
  ASSERT_LT(expect.size(), kRows);  // the input really had duplicates

  for (const size_t workers : kWorkerCounts) {
    TaskPool pool(workers);
    const ParallelContext pc = MakeCtx(&pool);
    CycleContext ctx = serial_ctx;
    ctx.parallel = &pc;
    std::vector<BatchRef> in;
    in.emplace_back(master);
    WorkStats stats;
    const DQBatch got = op.RunCycle(std::move(in), queries, ctx, &stats);
    ExpectBatchesIdentical(expect, got, "distinct w=" + std::to_string(workers));
    EXPECT_EQ(stats.tuples_in, serial_stats.tuples_in);
    EXPECT_EQ(stats.tuples_out, serial_stats.tuples_out);
    EXPECT_EQ(stats.hash_builds, serial_stats.hash_builds);
    EXPECT_EQ(stats.hash_probes, serial_stats.hash_probes);
    EXPECT_EQ(stats.qid_elems, serial_stats.qid_elems);
  }
}

// --- TopNOp ------------------------------------------------------------------

TEST(ParallelEquivalence, TopNMatchesSerial) {
  const SchemaPtr schema = Schema::Make({{"id", ValueType::kInt},
                                         {"val", ValueType::kInt},
                                         {"name", ValueType::kString}});
  constexpr size_t kRows = 3000;
  constexpr int kQueries = 12;
  TopNOp op(schema, {{1, true}, {0, false}}, /*default_limit=*/25);
  std::vector<OpQuery> queries(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    queries[q].id = static_cast<QueryId>(q);
    if (q % 3 == 0) queries[q].limit = 5;
    if (q % 4 == 1) {
      queries[q].predicate =
          Expr::Ge(Expr::Column(1), Expr::Literal(Value::Int(5)));
    }
  }

  CycleContext serial_ctx;
  serial_ctx.read_snapshot = 1;
  serial_ctx.write_version = 2;
  const DQBatch master = MakeSortInput(schema, kRows, kQueries);
  std::vector<BatchRef> in0;
  in0.emplace_back(master);
  WorkStats serial_stats;
  const DQBatch expect = op.RunCycle(std::move(in0), queries, serial_ctx,
                                     &serial_stats);
  ASSERT_GT(expect.size(), 0u);

  for (const size_t workers : kWorkerCounts) {
    TaskPool pool(workers);
    const ParallelContext pc = MakeCtx(&pool);
    CycleContext ctx = serial_ctx;
    ctx.parallel = &pc;
    std::vector<BatchRef> in;
    in.emplace_back(master);
    WorkStats stats;
    const DQBatch got = op.RunCycle(std::move(in), queries, ctx, &stats);
    ExpectBatchesIdentical(expect, got, "topn w=" + std::to_string(workers));
    EXPECT_EQ(stats.tuples_in, serial_stats.tuples_in);
    EXPECT_EQ(stats.tuples_out, serial_stats.tuples_out);
    EXPECT_EQ(stats.predicate_evals, serial_stats.predicate_evals);
  }
}

// --- ProbeOp -----------------------------------------------------------------

TEST(ParallelEquivalence, ProbeMatchesSerial) {
  // One table + index shared by the serial and parallel runs: ProbeOp reads
  // under a snapshot and applies no updates here, so both runs see the same
  // rows.
  auto catalog = std::make_unique<Catalog>();
  Table* t = catalog->CreateTable(
      "t", Schema::Make({{"id", ValueType::kInt},
                         {"val", ValueType::kInt},
                         {"name", ValueType::kString}}));
  Rng rng(53);
  for (size_t i = 0; i < 2000; ++i) {
    t->Insert({Value::Int(static_cast<int64_t>(i)), Value::Int(rng.Uniform(0, 79)),
               Value::Str("n" + std::to_string(i % 29))},
              1);
  }
  t->CreateIndex("val_idx", "val");
  catalog->snapshots().Reset(1);

  // A wide mix of probe shapes: shared equality groups (several queries per
  // key), equalities with extra conjuncts, ranges, IN lists, and one
  // degenerate full-scan query — enough independent items for the parallel
  // fan-out to engage.
  std::vector<OpQuery> queries;
  QueryId id = 0;
  for (int v = 0; v < 20; ++v) {
    OpQuery q;
    q.id = id++;
    q.predicate = Expr::Eq(Expr::Column(1), Expr::Literal(Value::Int(v * 4)));
    queries.push_back(q);
    if (v % 2 == 0) {
      OpQuery dup;  // same key, extra conjunct: joins the probe group
      dup.id = id++;
      dup.predicate =
          Expr::And({Expr::Eq(Expr::Column(1), Expr::Literal(Value::Int(v * 4))),
                     Expr::Ge(Expr::Column(0), Expr::Literal(Value::Int(500)))});
      queries.push_back(dup);
    }
  }
  for (int lo = 0; lo < 3; ++lo) {
    OpQuery q;
    q.id = id++;
    q.predicate =
        Expr::And({Expr::Ge(Expr::Column(1), Expr::Literal(Value::Int(lo * 20))),
                   Expr::Le(Expr::Column(1), Expr::Literal(Value::Int(lo * 20 + 9)))});
    queries.push_back(q);
  }
  {
    OpQuery q;
    q.id = id++;
    q.predicate = Expr::In(Expr::Column(1),
                           {Expr::Literal(Value::Int(3)), Expr::Literal(Value::Int(9)),
                            Expr::Literal(Value::Int(27))});
    queries.push_back(q);
  }
  {
    OpQuery q;  // no constraint on the indexed column: filtered scan
    q.id = id++;
    q.predicate = Expr::Like(Expr::Column(2), "%n1%");
    queries.push_back(q);
  }

  ProbeOp op(t, "val_idx");
  CycleContext serial_ctx;
  serial_ctx.read_snapshot = 1;
  serial_ctx.write_version = 2;
  WorkStats serial_stats;
  const DQBatch expect = op.RunCycle({}, queries, serial_ctx, &serial_stats);
  ASSERT_GT(expect.size(), 0u);

  for (const size_t workers : kWorkerCounts) {
    TaskPool pool(workers);
    const ParallelContext pc = MakeCtx(&pool);
    CycleContext ctx = serial_ctx;
    ctx.parallel = &pc;
    WorkStats stats;
    const DQBatch got = op.RunCycle({}, queries, ctx, &stats);
    ExpectBatchesIdentical(expect, got, "probe w=" + std::to_string(workers));
    EXPECT_EQ(stats.index_lookups, serial_stats.index_lookups);
    EXPECT_EQ(stats.predicate_evals, serial_stats.predicate_evals);
    EXPECT_EQ(stats.rows_scanned, serial_stats.rows_scanned);
    EXPECT_EQ(stats.tuples_out, serial_stats.tuples_out);
    EXPECT_EQ(stats.qid_elems, serial_stats.qid_elems);
  }
}

// --- IndexJoinOp -------------------------------------------------------------

TEST(ParallelEquivalence, IndexJoinMatchesSerial) {
  auto catalog = std::make_unique<Catalog>();
  Table* orders = catalog->CreateTable(
      "orders", Schema::Make({{"order_id", ValueType::kInt},
                              {"user_id", ValueType::kInt},
                              {"amount", ValueType::kInt}}));
  for (size_t i = 0; i < 1500; ++i) {
    orders->Insert({Value::Int(static_cast<int64_t>(i)),
                    Value::Int(static_cast<int64_t>(i % 120)),
                    Value::Int(static_cast<int64_t>(i % 311))},
                   1);
  }
  orders->CreateIndex("uid_idx", "user_id");
  catalog->snapshots().Reset(1);

  const SchemaPtr outer_schema = Schema::Make({{"uid", ValueType::kInt},
                                               {"country", ValueType::kInt}});
  constexpr int kQueries = 10;
  DQBatch master(outer_schema);
  Rng rng(61);
  for (size_t i = 0; i < 600; ++i) {
    std::vector<QueryId> ids;
    for (int q = 0; q < kQueries; ++q) {
      if (rng.Bernoulli(0.4)) ids.push_back(static_cast<QueryId>(q));
    }
    // Keys repeat (shared look-up cache hits), some miss the inner table
    // entirely, and a few are NULL (must never join).
    const Value key = i % 31 == 0
                          ? Value::Null()
                          : Value::Int(static_cast<int64_t>(i % 150));
    master.Push({key, Value::Int(rng.Uniform(0, 5))},
                QueryIdSet::FromSorted(std::move(ids)));
  }

  IndexJoinOp op(outer_schema, /*outer_key=*/0, orders, "uid_idx", "u", "o");
  std::vector<OpQuery> queries(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    queries[q].id = static_cast<QueryId>(q);
    if (q % 3 == 0) {
      // Residual over the joined tuple (amount is column 4: outer 2 ++ inner 3).
      queries[q].predicate =
          Expr::Ge(Expr::Column(4), Expr::Literal(Value::Int(150)));
    }
  }

  CycleContext serial_ctx;
  serial_ctx.read_snapshot = 1;
  serial_ctx.write_version = 2;
  std::vector<BatchRef> in0;
  in0.emplace_back(master);
  WorkStats serial_stats;
  const DQBatch expect = op.RunCycle(std::move(in0), queries, serial_ctx,
                                     &serial_stats);
  ASSERT_GT(expect.size(), 0u);

  for (const size_t workers : kWorkerCounts) {
    TaskPool pool(workers);
    const ParallelContext pc = MakeCtx(&pool);
    CycleContext ctx = serial_ctx;
    ctx.parallel = &pc;
    std::vector<BatchRef> in;
    in.emplace_back(master);
    WorkStats stats;
    const DQBatch got = op.RunCycle(std::move(in), queries, ctx, &stats);
    ExpectBatchesIdentical(expect, got, "ixjoin w=" + std::to_string(workers));
    EXPECT_EQ(stats.tuples_in, serial_stats.tuples_in);
    EXPECT_EQ(stats.index_lookups, serial_stats.index_lookups);
    EXPECT_EQ(stats.hash_probes, serial_stats.hash_probes);
    EXPECT_EQ(stats.predicate_evals, serial_stats.predicate_evals);
    EXPECT_EQ(stats.tuples_out, serial_stats.tuples_out);
  }
}

// --- End to end: a parallel engine matches a serial engine -------------------

class ParallelEngineFixture : public ::testing::Test {
 protected:
  std::unique_ptr<Catalog> MakeCatalog() {
    auto cat = std::make_unique<Catalog>();
    Table* users = cat->CreateTable(
        "users", Schema::Make({{"user_id", ValueType::kInt},
                               {"country", ValueType::kInt},
                               {"account", ValueType::kInt}}));
    Table* orders = cat->CreateTable(
        "orders", Schema::Make({{"order_id", ValueType::kInt},
                                {"user_id", ValueType::kInt},
                                {"amount", ValueType::kInt}}));
    users->set_rows_per_segment(32);
    orders->set_rows_per_segment(32);
    for (int i = 0; i < 300; ++i) {
      users->Insert({Value::Int(i), Value::Int(i % 5), Value::Int(i * 10)}, 1);
    }
    for (int i = 0; i < 900; ++i) {
      orders->Insert({Value::Int(i), Value::Int(i % 300), Value::Int(i % 173)}, 1);
    }
    cat->snapshots().Reset(1);
    return cat;
  }

  std::unique_ptr<GlobalPlan> BuildPlan(Catalog* cat) {
    GlobalPlanBuilder b(cat);
    const SchemaPtr us = cat->MustGetTable("users")->schema();
    b.AddQuery("user_orders",
               logical::HashJoin(
                   logical::Scan("users", Expr::Eq(Expr::Column(*us, "user_id"),
                                                   Expr::Param(0))),
                   logical::Scan("orders"), "user_id", "user_id", nullptr, "u", "o"));
    b.AddQuery("big_orders",
               logical::Sort(logical::Scan("orders",
                                           Expr::Ge(Expr::Column(2), Expr::Param(0))),
                             {{"amount", false}, {"order_id", true}}));
    b.AddUpdate("bump", "users",
                {{"account", Expr::Add(Expr::Column(2), Expr::Param(1))}},
                Expr::Eq(Expr::Column(0), Expr::Param(0)));
    return b.Build();
  }
};

TEST_F(ParallelEngineFixture, ParallelEngineMatchesSerialAcrossBatches) {
  auto serial_cat = MakeCatalog();
  auto par_cat = MakeCatalog();
  auto serial_plan = BuildPlan(serial_cat.get());
  auto par_plan = BuildPlan(par_cat.get());
  GlobalPlan* par_raw = par_plan.get();

  Engine serial_engine(std::move(serial_plan));
  EngineOptions popts;
  popts.parallel.num_workers = 4;
  popts.parallel.min_rows_per_task = 16;  // small tables must still split
  Engine par_engine(std::move(par_plan), std::move(popts),
                    std::make_unique<ThreadedRuntime>(par_raw,
                                                      /*pin_threads=*/false));
  ASSERT_NE(par_engine.task_pool(), nullptr);
  api::ServerOptions sopts;
  sopts.start_paused = true;
  api::Server serial_server(&serial_engine, sopts);
  api::Server par_server(&par_engine, sopts);
  auto ss = serial_server.OpenSession();
  auto sp = par_server.OpenSession();

  for (int round = 0; round < 4; ++round) {
    std::vector<api::AsyncResult> fs, fp;
    for (int uid = 0; uid < 6; ++uid) {
      fs.push_back(ss->ExecuteAsync("user_orders", {Value::Int(uid)}));
      fp.push_back(sp->ExecuteAsync("user_orders", {Value::Int(uid)}));
    }
    fs.push_back(ss->ExecuteAsync("big_orders", {Value::Int(150)}));
    fp.push_back(sp->ExecuteAsync("big_orders", {Value::Int(150)}));
    fs.push_back(ss->ExecuteAsync("bump", {Value::Int(round), Value::Int(7)}));
    fp.push_back(sp->ExecuteAsync("bump", {Value::Int(round), Value::Int(7)}));
    serial_server.StepBatch();
    par_server.StepBatch();

    for (size_t i = 0; i < fs.size(); ++i) {
      ResultSet a = fs[i].Get();
      ResultSet b = fp[i].Get();
      ExpectResultsEqual(a, b,
                         "round " + std::to_string(round) + " q " + std::to_string(i));
    }
  }
}

TEST_F(ParallelEngineFixture, GammaRoutingParallelMatchesSerialAndCountsSharing) {
  // Many concurrent calls, most sharing one statement+parameter: result
  // routing fans out across the pool on the parallel server (the item
  // threshold is dropped to 1) while the serial server routes inline. The
  // per-call results, the batch-level sharing win, and the routing-miss
  // counter must all agree.
  auto serial_cat = MakeCatalog();
  auto par_cat = MakeCatalog();
  auto serial_plan = BuildPlan(serial_cat.get());
  auto par_plan = BuildPlan(par_cat.get());
  GlobalPlan* par_raw = par_plan.get();

  Engine serial_engine(std::move(serial_plan));
  EngineOptions popts;
  popts.parallel.num_workers = 4;
  popts.parallel.min_rows_per_task = 16;
  popts.parallel.min_items_per_task = 1;  // small batches still fan out Γ
  Engine par_engine(std::move(par_plan), std::move(popts),
                    std::make_unique<ThreadedRuntime>(par_raw,
                                                      /*pin_threads=*/false));
  api::ServerOptions sopts;
  sopts.start_paused = true;
  api::Server serial_server(&serial_engine, sopts);
  api::Server par_server(&par_engine, sopts);
  auto ss = serial_server.OpenSession();
  auto sp = par_server.OpenSession();

  std::vector<api::AsyncResult> fs, fp;
  for (int i = 0; i < 10; ++i) {  // ten subscribers to identical results
    fs.push_back(ss->ExecuteAsync("user_orders", {Value::Int(42)}));
    fp.push_back(sp->ExecuteAsync("user_orders", {Value::Int(42)}));
  }
  for (int uid = 0; uid < 4; ++uid) {
    fs.push_back(ss->ExecuteAsync("user_orders", {Value::Int(uid)}));
    fp.push_back(sp->ExecuteAsync("user_orders", {Value::Int(uid)}));
  }
  const BatchReport serial_report = serial_server.StepBatch();
  const BatchReport par_report = par_server.StepBatch();

  for (size_t i = 0; i < fs.size(); ++i) {
    ResultSet a = fs[i].Get();
    ResultSet b = fp[i].Get();
    ExpectResultsEqual(a, b, "gamma q " + std::to_string(i));
    // Every call of the batch carries the batch-level sharing win.
    EXPECT_EQ(a.shared_work_saved, serial_report.shared_work_saved) << i;
    EXPECT_EQ(b.shared_work_saved, par_report.shared_work_saved) << i;
  }
  // Ten queries read rows materialized once: real sharing, identical
  // accounting on both servers.
  EXPECT_GT(par_report.shared_work_saved, 0u);
  EXPECT_EQ(par_report.shared_work_saved, serial_report.shared_work_saved);
  EXPECT_GE(par_report.rows_delivered, par_report.rows_touched);
  EXPECT_EQ(par_report.missing_root_outputs, 0u);
  EXPECT_EQ(serial_report.missing_root_outputs, 0u);
  EXPECT_EQ(par_server.stats().shared_work_saved, par_report.shared_work_saved);
  EXPECT_EQ(par_server.stats().missing_root_outputs, 0u);
}

}  // namespace
}  // namespace shareddb
