// ClockScan + PredicateIndex tests: the query-data join, snapshot semantics,
// arrival-order updates, clock-hand rotation, and a property sweep comparing
// the shared scan against per-query reference scans.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/clock_scan.h"

namespace shareddb {
namespace {

SchemaPtr ItemSchema() {
  return Schema::Make({{"id", ValueType::kInt},
                       {"category", ValueType::kInt},
                       {"price", ValueType::kDouble},
                       {"title", ValueType::kString}});
}

Tuple Item(int64_t id, int64_t cat, double price, const std::string& title) {
  return {Value::Int(id), Value::Int(cat), Value::Double(price), Value::Str(title)};
}

ExprPtr CatEq(int64_t c) {
  return Expr::Eq(Expr::Column(1), Expr::Literal(Value::Int(c)));
}

ExprPtr PriceLt(double p) {
  return Expr::Lt(Expr::Column(2), Expr::Literal(Value::Double(p)));
}

// --- PredicateIndex -----------------------------------------------------------

TEST(PredicateIndexTest, EqualityAnchoredMatching) {
  std::vector<ScanQuerySpec> queries{{0, CatEq(1)}, {1, CatEq(2)}, {2, CatEq(1)}};
  PredicateIndex idx(queries);
  EXPECT_EQ(idx.num_eq_columns(), 1u);
  QueryIdSet out;
  PredicateIndexStats stats;
  idx.Match(Item(1, 1, 5, "a"), &out, &stats);
  EXPECT_EQ(out.ids(), (std::vector<QueryId>{0, 2}));
  idx.Match(Item(2, 2, 5, "a"), &out, &stats);
  EXPECT_EQ(out.ids(), (std::vector<QueryId>{1}));
  idx.Match(Item(3, 9, 5, "a"), &out, &stats);
  EXPECT_TRUE(out.empty());
  // Candidate verifications stay proportional to matching queries, not to
  // the total number of queries: row of category 9 verified 0 candidates.
  EXPECT_EQ(stats.candidates, 3u);
}

TEST(PredicateIndexTest, RangeAndResidualAnchors) {
  std::vector<ScanQuerySpec> queries{
      {0, PriceLt(10)},                                   // range anchor
      {1, Expr::Like(Expr::Column(3), "%foo%")},          // residual anchor
      {2, nullptr},                                       // match-all
  };
  PredicateIndex idx(queries);
  QueryIdSet out;
  idx.Match(Item(1, 1, 5, "a foo b"), &out, nullptr);
  EXPECT_EQ(out.ids(), (std::vector<QueryId>{0, 1, 2}));
  idx.Match(Item(2, 1, 50, "bar"), &out, nullptr);
  EXPECT_EQ(out.ids(), (std::vector<QueryId>{2}));
}

TEST(PredicateIndexTest, MultiConstraintVerification) {
  // category = 1 AND price < 10: anchored on the equality, verified fully.
  std::vector<ScanQuerySpec> queries{{0, Expr::And({CatEq(1), PriceLt(10)})}};
  PredicateIndex idx(queries);
  QueryIdSet out;
  idx.Match(Item(1, 1, 5, "x"), &out, nullptr);
  EXPECT_EQ(out.size(), 1u);
  idx.Match(Item(2, 1, 15, "x"), &out, nullptr);
  EXPECT_TRUE(out.empty());
  idx.Match(Item(3, 2, 5, "x"), &out, nullptr);
  EXPECT_TRUE(out.empty());
}

// --- ClockScan ------------------------------------------------------------------

class ClockScanFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>("items", ItemSchema());
    table_->set_rows_per_segment(8);
    for (int i = 0; i < 64; ++i) {
      table_->Insert(Item(i, i % 4, i * 1.0, "title" + std::to_string(i)), 1);
    }
    scan_ = std::make_unique<ClockScan>(table_.get());
  }

  std::unique_ptr<Table> table_;
  std::unique_ptr<ClockScan> scan_;
};

TEST_F(ClockScanFixture, SharedScanAnnotatesOverlap) {
  // Q0: category 1; Q1: price < 8 — overlap at ids 1, 5.
  std::vector<ScanQuerySpec> queries{{0, CatEq(1)}, {1, PriceLt(8)}};
  ClockScanStats stats;
  DQBatch out = scan_->RunCycle(queries, {}, /*read=*/1, /*write=*/2, &stats);
  EXPECT_EQ(stats.rows_scanned, 64u);
  EXPECT_EQ(out.RowsFor(0).size(), 16u);  // 64/4 in category 1
  EXPECT_EQ(out.RowsFor(1).size(), 8u);   // ids 0..7
  // Overlapping rows appear once with both annotations (NF², Figure 1).
  size_t both = 0;
  for (const QueryIdSet& q : out.qids) {
    if (q.Contains(0) && q.Contains(1)) ++both;
  }
  EXPECT_EQ(both, 2u);  // ids 1 and 5
  EXPECT_EQ(out.size() + both, out.MembershipCount());
}

TEST_F(ClockScanFixture, SelectsReadSnapshotNotBatchUpdates) {
  // The same batch updates category of id 0 and reads category 0: the read
  // sees the OLD snapshot (paper: selects read one consistent snapshot).
  UpdateOp up;
  up.kind = UpdateKind::kUpdate;
  up.where = Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(0)));
  up.sets = {{1, Expr::Literal(Value::Int(99))}};
  std::vector<ScanQuerySpec> queries{{0, CatEq(99)}};
  DQBatch out = scan_->RunCycle(queries, {up}, /*read=*/1, /*write=*/2, nullptr);
  EXPECT_TRUE(out.RowsFor(0).empty());
  // Next cycle (read=2) sees it.
  DQBatch out2 = scan_->RunCycle(queries, {}, /*read=*/2, /*write=*/3, nullptr);
  EXPECT_EQ(out2.RowsFor(0).size(), 1u);
}

TEST_F(ClockScanFixture, UpdatesApplyInArrivalOrder) {
  // Two updates on the same row in one batch: the second sees the first.
  UpdateOp u1;
  u1.kind = UpdateKind::kUpdate;
  u1.where = Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(5)));
  u1.sets = {{2, Expr::Literal(Value::Double(100))}};
  UpdateOp u2;
  u2.kind = UpdateKind::kUpdate;
  u2.where = Expr::And({Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(5))),
                        Expr::Ge(Expr::Column(2), Expr::Literal(Value::Double(100)))});
  // Doubles the price only if the first update has been applied.
  u2.sets = {{2, Expr::Literal(Value::Double(200))}};
  uint64_t c1 = 0, c2 = 0;
  u1.applied_out = &c1;
  u2.applied_out = &c2;
  scan_->RunCycle({}, {u1, u2}, 1, 2, nullptr);
  EXPECT_EQ(c1, 1u);
  EXPECT_EQ(c2, 1u);
  // Verify final price at the new snapshot.
  std::vector<ScanQuerySpec> q{{0, Expr::Eq(Expr::Column(0),
                                            Expr::Literal(Value::Int(5)))}};
  DQBatch out = scan_->RunCycle(q, {}, 2, 3, nullptr);
  ASSERT_EQ(out.RowsFor(0).size(), 1u);
  EXPECT_DOUBLE_EQ(out.RowsFor(0)[0][2].AsDouble(), 200.0);
}

TEST_F(ClockScanFixture, InsertAndDeleteThroughScan) {
  UpdateOp ins;
  ins.kind = UpdateKind::kInsert;
  ins.row = Item(1000, 7, 1.0, "new");
  UpdateOp del;
  del.kind = UpdateKind::kDelete;
  del.where = Expr::Lt(Expr::Column(0), Expr::Literal(Value::Int(4)));
  ClockScanStats stats;
  scan_->RunCycle({}, {ins, del}, 1, 2, &stats);
  EXPECT_EQ(stats.updates_applied, 5u);  // 1 insert + 4 deletes
  EXPECT_EQ(table_->VisibleCount(2), 64u + 1u - 4u);
  EXPECT_EQ(table_->VisibleCount(1), 64u);  // old snapshot untouched
}

TEST_F(ClockScanFixture, ClockHandRotates) {
  std::vector<ScanQuerySpec> q{{0, nullptr}};
  EXPECT_EQ(scan_->clock_hand(), 0u);
  scan_->RunCycle(q, {}, 1, 2, nullptr);
  EXPECT_EQ(scan_->clock_hand(), 1u);
  scan_->RunCycle(q, {}, 1, 2, nullptr);
  EXPECT_EQ(scan_->clock_hand(), 2u);
  // All rows are still produced exactly once regardless of the hand.
  DQBatch out = scan_->RunCycle(q, {}, 1, 2, nullptr);
  EXPECT_EQ(out.RowsFor(0).size(), 64u);
}

TEST_F(ClockScanFixture, EmptyQueryListSkipsScan) {
  ClockScanStats stats;
  DQBatch out = scan_->RunCycle({}, {}, 1, 2, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.rows_scanned, 0u);
}

TEST_F(ClockScanFixture, PredicateIndexCachedAcrossCycles) {
  // An unchanged query batch (same ids, same bound predicate objects) reuses
  // the PredicateIndex built on the first cycle.
  std::vector<ScanQuerySpec> queries{{0, CatEq(1)}, {1, PriceLt(8)}};
  EXPECT_EQ(scan_->index_builds(), 0u);
  scan_->RunCycle(queries, {}, 1, 2, nullptr);
  EXPECT_EQ(scan_->index_builds(), 1u);
  scan_->RunCycle(queries, {}, 1, 2, nullptr);
  scan_->RunCycle(queries, {}, 2, 3, nullptr);  // snapshot change: still cached
  EXPECT_EQ(scan_->index_builds(), 1u);

  // Any change to the batch invalidates: a different id ...
  std::vector<ScanQuerySpec> renumbered{{7, queries[0].predicate},
                                        {1, queries[1].predicate}};
  scan_->RunCycle(renumbered, {}, 1, 2, nullptr);
  EXPECT_EQ(scan_->index_builds(), 2u);

  // ... a different predicate object (even a structurally equal one) ...
  std::vector<ScanQuerySpec> rebound{{7, CatEq(1)}, {1, queries[1].predicate}};
  scan_->RunCycle(rebound, {}, 1, 2, nullptr);
  EXPECT_EQ(scan_->index_builds(), 3u);

  // ... or a different batch size.
  std::vector<ScanQuerySpec> grown = rebound;
  grown.push_back({9, nullptr});
  scan_->RunCycle(grown, {}, 1, 2, nullptr);
  EXPECT_EQ(scan_->index_builds(), 4u);

  // The cached index still answers correctly after invalidations and reuse.
  DQBatch out = scan_->RunCycle(rebound, {}, 1, 2, nullptr);
  EXPECT_EQ(scan_->index_builds(), 5u);
  EXPECT_EQ(out.RowsFor(7).size(), 16u);
  EXPECT_EQ(out.RowsFor(1).size(), 8u);
}

// Property: the shared scan equals per-query reference scans, and examines
// each row exactly once regardless of the number of queries (the bounded-
// computation claim at scan level).
TEST(ClockScanProperty, MatchesPerQueryReference) {
  Rng rng(1234);
  for (int round = 0; round < 30; ++round) {
    Table table("items", ItemSchema());
    table.set_rows_per_segment(16);
    const int rows = static_cast<int>(rng.Uniform(1, 200));
    for (int i = 0; i < rows; ++i) {
      table.Insert(Item(i, rng.Uniform(0, 5), rng.Uniform(0, 100) * 1.0,
                        rng.Bernoulli(0.3) ? "special" : "plain"),
                   1);
    }
    const int nq = static_cast<int>(rng.Uniform(1, 40));
    std::vector<ScanQuerySpec> queries;
    for (int q = 0; q < nq; ++q) {
      ExprPtr pred;
      switch (rng.Uniform(0, 3)) {
        case 0: pred = CatEq(rng.Uniform(0, 5)); break;
        case 1: pred = PriceLt(rng.Uniform(0, 100) * 1.0); break;
        case 2: pred = Expr::Like(Expr::Column(3), "%special%"); break;
        case 3: pred = nullptr; break;
      }
      queries.push_back({static_cast<QueryId>(q), pred});
    }
    ClockScan scan(&table);
    ClockScanStats stats;
    DQBatch out = scan.RunCycle(queries, {}, 1, 2, &stats);
    EXPECT_EQ(stats.rows_scanned, static_cast<uint64_t>(rows));
    static const std::vector<Value> kNoParams;
    for (const ScanQuerySpec& q : queries) {
      std::vector<Tuple> expect;
      table.ScanVisible(1, [&](RowId, const Tuple& t) {
        if (q.predicate == nullptr || q.predicate->EvalBool(t, kNoParams)) {
          expect.push_back(t);
        }
        return true;
      });
      const std::vector<Tuple> got = out.RowsFor(q.id);
      ASSERT_EQ(got.size(), expect.size()) << "query " << q.id;
      // Shared scan emits rows in clock order; compare as multisets.
      auto sorted = [](std::vector<Tuple> v) {
        std::sort(v.begin(), v.end(), TupleLess);
        return v;
      };
      EXPECT_EQ(sorted(got), sorted(expect));
    }
  }
}

}  // namespace
}  // namespace shareddb
