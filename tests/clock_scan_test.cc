// ClockScan + PredicateIndex tests: the query-data join, snapshot semantics,
// arrival-order updates, clock-hand rotation, and a property sweep comparing
// the shared scan against per-query reference scans.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/clock_scan.h"

namespace shareddb {
namespace {

SchemaPtr ItemSchema() {
  return Schema::Make({{"id", ValueType::kInt},
                       {"category", ValueType::kInt},
                       {"price", ValueType::kDouble},
                       {"title", ValueType::kString}});
}

Tuple Item(int64_t id, int64_t cat, double price, const std::string& title) {
  return {Value::Int(id), Value::Int(cat), Value::Double(price), Value::Str(title)};
}

ExprPtr CatEq(int64_t c) {
  return Expr::Eq(Expr::Column(1), Expr::Literal(Value::Int(c)));
}

ExprPtr PriceLt(double p) {
  return Expr::Lt(Expr::Column(2), Expr::Literal(Value::Double(p)));
}

// --- PredicateIndex -----------------------------------------------------------

TEST(PredicateIndexTest, EqualityAnchoredMatching) {
  std::vector<ScanQuerySpec> queries{{0, CatEq(1)}, {1, CatEq(2)}, {2, CatEq(1)}};
  PredicateIndex idx(queries);
  EXPECT_EQ(idx.num_eq_columns(), 1u);
  QueryIdSet out;
  PredicateIndexStats stats;
  idx.Match(Item(1, 1, 5, "a"), &out, &stats);
  EXPECT_EQ(out.ids(), (std::vector<QueryId>{0, 2}));
  idx.Match(Item(2, 2, 5, "a"), &out, &stats);
  EXPECT_EQ(out.ids(), (std::vector<QueryId>{1}));
  idx.Match(Item(3, 9, 5, "a"), &out, &stats);
  EXPECT_TRUE(out.empty());
  // Candidate verifications stay proportional to matching queries, not to
  // the total number of queries: row of category 9 verified 0 candidates.
  EXPECT_EQ(stats.candidates, 3u);
}

TEST(PredicateIndexTest, RangeAndResidualAnchors) {
  std::vector<ScanQuerySpec> queries{
      {0, PriceLt(10)},                                   // range anchor
      {1, Expr::Like(Expr::Column(3), "%foo%")},          // residual anchor
      {2, nullptr},                                       // match-all
  };
  PredicateIndex idx(queries);
  QueryIdSet out;
  idx.Match(Item(1, 1, 5, "a foo b"), &out, nullptr);
  EXPECT_EQ(out.ids(), (std::vector<QueryId>{0, 1, 2}));
  idx.Match(Item(2, 1, 50, "bar"), &out, nullptr);
  EXPECT_EQ(out.ids(), (std::vector<QueryId>{2}));
}

TEST(PredicateIndexTest, MultiConstraintVerification) {
  // category = 1 AND price < 10: anchored on the equality, verified fully.
  std::vector<ScanQuerySpec> queries{{0, Expr::And({CatEq(1), PriceLt(10)})}};
  PredicateIndex idx(queries);
  QueryIdSet out;
  idx.Match(Item(1, 1, 5, "x"), &out, nullptr);
  EXPECT_EQ(out.size(), 1u);
  idx.Match(Item(2, 1, 15, "x"), &out, nullptr);
  EXPECT_TRUE(out.empty());
  idx.Match(Item(3, 2, 5, "x"), &out, nullptr);
  EXPECT_TRUE(out.empty());
}

// --- ClockScan ------------------------------------------------------------------

class ClockScanFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>("items", ItemSchema());
    table_->set_rows_per_segment(8);
    for (int i = 0; i < 64; ++i) {
      table_->Insert(Item(i, i % 4, i * 1.0, "title" + std::to_string(i)), 1);
    }
    scan_ = std::make_unique<ClockScan>(table_.get());
  }

  std::unique_ptr<Table> table_;
  std::unique_ptr<ClockScan> scan_;
};

TEST_F(ClockScanFixture, SharedScanAnnotatesOverlap) {
  // Q0: category 1; Q1: price < 8 — overlap at ids 1, 5.
  std::vector<ScanQuerySpec> queries{{0, CatEq(1)}, {1, PriceLt(8)}};
  ClockScanStats stats;
  DQBatch out = scan_->RunCycle(queries, {}, /*read=*/1, /*write=*/2, &stats);
  EXPECT_EQ(stats.rows_scanned, 64u);
  EXPECT_EQ(out.RowsFor(0).size(), 16u);  // 64/4 in category 1
  EXPECT_EQ(out.RowsFor(1).size(), 8u);   // ids 0..7
  // Overlapping rows appear once with both annotations (NF², Figure 1).
  size_t both = 0;
  for (const QueryIdSet& q : out.qids) {
    if (q.Contains(0) && q.Contains(1)) ++both;
  }
  EXPECT_EQ(both, 2u);  // ids 1 and 5
  EXPECT_EQ(out.size() + both, out.MembershipCount());
}

TEST_F(ClockScanFixture, SelectsReadSnapshotNotBatchUpdates) {
  // The same batch updates category of id 0 and reads category 0: the read
  // sees the OLD snapshot (paper: selects read one consistent snapshot).
  UpdateOp up;
  up.kind = UpdateKind::kUpdate;
  up.where = Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(0)));
  up.sets = {{1, Expr::Literal(Value::Int(99))}};
  std::vector<ScanQuerySpec> queries{{0, CatEq(99)}};
  DQBatch out = scan_->RunCycle(queries, {up}, /*read=*/1, /*write=*/2, nullptr);
  EXPECT_TRUE(out.RowsFor(0).empty());
  // Next cycle (read=2) sees it.
  DQBatch out2 = scan_->RunCycle(queries, {}, /*read=*/2, /*write=*/3, nullptr);
  EXPECT_EQ(out2.RowsFor(0).size(), 1u);
}

TEST_F(ClockScanFixture, UpdatesApplyInArrivalOrder) {
  // Two updates on the same row in one batch: the second sees the first.
  UpdateOp u1;
  u1.kind = UpdateKind::kUpdate;
  u1.where = Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(5)));
  u1.sets = {{2, Expr::Literal(Value::Double(100))}};
  UpdateOp u2;
  u2.kind = UpdateKind::kUpdate;
  u2.where = Expr::And({Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(5))),
                        Expr::Ge(Expr::Column(2), Expr::Literal(Value::Double(100)))});
  // Doubles the price only if the first update has been applied.
  u2.sets = {{2, Expr::Literal(Value::Double(200))}};
  uint64_t c1 = 0, c2 = 0;
  u1.applied_out = &c1;
  u2.applied_out = &c2;
  scan_->RunCycle({}, {u1, u2}, 1, 2, nullptr);
  EXPECT_EQ(c1, 1u);
  EXPECT_EQ(c2, 1u);
  // Verify final price at the new snapshot.
  std::vector<ScanQuerySpec> q{{0, Expr::Eq(Expr::Column(0),
                                            Expr::Literal(Value::Int(5)))}};
  DQBatch out = scan_->RunCycle(q, {}, 2, 3, nullptr);
  ASSERT_EQ(out.RowsFor(0).size(), 1u);
  EXPECT_DOUBLE_EQ(out.RowsFor(0)[0][2].AsDouble(), 200.0);
}

TEST_F(ClockScanFixture, InsertAndDeleteThroughScan) {
  UpdateOp ins;
  ins.kind = UpdateKind::kInsert;
  ins.row = Item(1000, 7, 1.0, "new");
  UpdateOp del;
  del.kind = UpdateKind::kDelete;
  del.where = Expr::Lt(Expr::Column(0), Expr::Literal(Value::Int(4)));
  ClockScanStats stats;
  scan_->RunCycle({}, {ins, del}, 1, 2, &stats);
  EXPECT_EQ(stats.updates_applied, 5u);  // 1 insert + 4 deletes
  EXPECT_EQ(table_->VisibleCount(2), 64u + 1u - 4u);
  EXPECT_EQ(table_->VisibleCount(1), 64u);  // old snapshot untouched
}

TEST_F(ClockScanFixture, ClockHandRotates) {
  std::vector<ScanQuerySpec> q{{0, nullptr}};
  EXPECT_EQ(scan_->clock_hand(), 0u);
  scan_->RunCycle(q, {}, 1, 2, nullptr);
  EXPECT_EQ(scan_->clock_hand(), 1u);
  scan_->RunCycle(q, {}, 1, 2, nullptr);
  EXPECT_EQ(scan_->clock_hand(), 2u);
  // All rows are still produced exactly once regardless of the hand.
  DQBatch out = scan_->RunCycle(q, {}, 1, 2, nullptr);
  EXPECT_EQ(out.RowsFor(0).size(), 64u);
}

TEST_F(ClockScanFixture, EmptyQueryListSkipsScan) {
  ClockScanStats stats;
  DQBatch out = scan_->RunCycle({}, {}, 1, 2, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.rows_scanned, 0u);
}

TEST_F(ClockScanFixture, PredicateIndexCachedAcrossCycles) {
  // An unchanged query batch (same ids, same bound predicate objects) reuses
  // the PredicateIndex built on the first cycle without even a rebind.
  std::vector<ScanQuerySpec> queries{{0, CatEq(1)}, {1, PriceLt(8)}};
  EXPECT_EQ(scan_->index_builds(), 0u);
  scan_->RunCycle(queries, {}, 1, 2, nullptr);
  EXPECT_EQ(scan_->index_builds(), 1u);
  scan_->RunCycle(queries, {}, 1, 2, nullptr);
  scan_->RunCycle(queries, {}, 2, 3, nullptr);  // snapshot change: still cached
  EXPECT_EQ(scan_->index_builds(), 1u);
  EXPECT_EQ(scan_->index_rebinds(), 0u);

  // A structurally unchanged batch takes the cheap rebind path, not a
  // rebuild: a renumbered id ...
  std::vector<ScanQuerySpec> renumbered{{7, queries[0].predicate},
                                        {1, queries[1].predicate}};
  DQBatch out = scan_->RunCycle(renumbered, {}, 1, 2, nullptr);
  EXPECT_EQ(scan_->index_builds(), 1u);
  EXPECT_EQ(scan_->index_rebinds(), 1u);
  EXPECT_EQ(out.RowsFor(7).size(), 16u);
  EXPECT_EQ(out.RowsFor(1).size(), 8u);

  // ... or a freshly allocated, structurally equal predicate object.
  std::vector<ScanQuerySpec> realloced{{7, CatEq(1)}, {1, PriceLt(8)}};
  out = scan_->RunCycle(realloced, {}, 1, 2, nullptr);
  EXPECT_EQ(scan_->index_builds(), 1u);
  EXPECT_EQ(scan_->index_rebinds(), 2u);
  EXPECT_EQ(out.RowsFor(7).size(), 16u);
  EXPECT_EQ(out.RowsFor(1).size(), 8u);

  // A different CONSTANT in a plain literal is a different structure (only
  // parameter slots are value-blind) — rebuild.
  std::vector<ScanQuerySpec> different{{7, CatEq(2)}, {1, PriceLt(8)}};
  out = scan_->RunCycle(different, {}, 1, 2, nullptr);
  EXPECT_EQ(scan_->index_builds(), 2u);
  EXPECT_EQ(out.RowsFor(7).size(), 16u);  // category 2 is also 16 rows

  // A different batch size rebuilds too.
  std::vector<ScanQuerySpec> grown = different;
  grown.push_back({9, nullptr});
  scan_->RunCycle(grown, {}, 1, 2, nullptr);
  EXPECT_EQ(scan_->index_builds(), 3u);
}

TEST_F(ClockScanFixture, ParameterRebindsHitTheFastPath) {
  // The prepared-statement steady state: the same template rebound with
  // fresh constants every batch. One build, then rebinds only — and each
  // rebound cycle answers with the NEW constants.
  auto tmpl = Expr::Eq(Expr::Column(1), Expr::Param(0));
  auto range_tmpl = Expr::Lt(Expr::Column(2), Expr::Param(1));
  for (int64_t round = 0; round < 4; ++round) {
    std::vector<Value> params{Value::Int(round % 4),
                              Value::Double(static_cast<double>(8 * round))};
    std::vector<ScanQuerySpec> queries{{0, tmpl->Bind(params)},
                                       {1, range_tmpl->Bind(params)}};
    DQBatch out = scan_->RunCycle(queries, {}, 1, 2, nullptr);
    EXPECT_EQ(out.RowsFor(0).size(), 16u) << round;  // every category has 16
    EXPECT_EQ(out.RowsFor(1).size(), static_cast<size_t>(8 * round)) << round;
  }
  EXPECT_EQ(scan_->index_builds(), 1u);
  EXPECT_EQ(scan_->index_rebinds(), 3u);
}

TEST(PredicateIndexTest, InListAnchorsAsEqualityBuckets) {
  // col IN (v1..vn) anchors one hash entry per element instead of degrading
  // to an always-verify; non-matching rows verify zero candidates.
  auto in_pred = [](std::vector<int64_t> vals) {
    std::vector<ExprPtr> elems;
    for (int64_t v : vals) elems.push_back(Expr::Literal(Value::Int(v)));
    return Expr::In(Expr::Column(1), std::move(elems));
  };
  std::vector<ScanQuerySpec> queries{{0, in_pred({1, 3})}, {1, in_pred({3, 5})}};
  PredicateIndex idx(queries);
  EXPECT_EQ(idx.num_eq_columns(), 1u);
  QueryIdSet out;
  PredicateIndexStats stats;
  idx.Match(Item(1, 3, 0, "x"), &out, &stats);
  EXPECT_EQ(out.ids(), (std::vector<QueryId>{0, 1}));
  idx.Match(Item(2, 5, 0, "x"), &out, &stats);
  EXPECT_EQ(out.ids(), (std::vector<QueryId>{1}));
  idx.Match(Item(3, 9, 0, "x"), &out, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.candidates, 3u);  // rows outside every list verify nothing
}

TEST(PredicateIndexTest, InListRebindSwapsElements) {
  auto tmpl = Expr::In(Expr::Column(1),
                       {Expr::Param(0), Expr::Param(1), Expr::Param(2)});
  std::vector<ScanQuerySpec> first{
      {0, tmpl->Bind({Value::Int(1), Value::Int(2), Value::Int(3)})}};
  PredicateIndex idx(first);
  QueryIdSet out;
  idx.Match(Item(1, 2, 0, "x"), &out, nullptr);
  EXPECT_EQ(out.size(), 1u);

  std::vector<ScanQuerySpec> second{
      {0, tmpl->Bind({Value::Int(7), Value::Int(8), Value::Int(9)})}};
  ASSERT_TRUE(idx.RebindConstants(second));
  idx.Match(Item(1, 2, 0, "x"), &out, nullptr);
  EXPECT_TRUE(out.empty());
  idx.Match(Item(1, 8, 0, "x"), &out, nullptr);
  EXPECT_EQ(out.size(), 1u);
}

TEST(PredicateIndexTest, RebindRefusesValueDependentShapes) {
  // A NULL-bound parameter residualizes its conjunct: the compiled shape is
  // value-dependent, so the rebind path must refuse and force a rebuild.
  auto tmpl = Expr::Eq(Expr::Column(1), Expr::Param(0));
  std::vector<ScanQuerySpec> null_bound{{0, tmpl->Bind({Value::Null()})}};
  PredicateIndex null_idx(null_bound);
  EXPECT_FALSE(null_idx.RebindConstants(
      std::vector<ScanQuerySpec>{{0, tmpl->Bind({Value::Int(1)})}}));

  // An anchored LIKE whose prefix range derives from the parameter VALUE.
  auto like_tmpl = Expr::LikeParam(Expr::Column(3), 0);
  std::vector<ScanQuerySpec> like_q{{0, like_tmpl->Bind({Value::Str("tit%")})}};
  PredicateIndex like_idx(like_q);
  EXPECT_FALSE(like_idx.RebindConstants(
      std::vector<ScanQuerySpec>{{0, like_tmpl->Bind({Value::Str("xy%")})}}));

  // Rebinding an eq parameter TO NULL must refuse as well.
  std::vector<ScanQuerySpec> ok{{0, tmpl->Bind({Value::Int(1)})}};
  PredicateIndex idx(ok);
  EXPECT_TRUE(idx.RebindConstants(
      std::vector<ScanQuerySpec>{{0, tmpl->Bind({Value::Int(2)})}}));
  EXPECT_FALSE(idx.RebindConstants(
      std::vector<ScanQuerySpec>{{0, tmpl->Bind({Value::Null()})}}));
}

// Property: the shared scan equals per-query reference scans, and examines
// each row exactly once regardless of the number of queries (the bounded-
// computation claim at scan level).
TEST(ClockScanProperty, MatchesPerQueryReference) {
  Rng rng(1234);
  for (int round = 0; round < 30; ++round) {
    Table table("items", ItemSchema());
    table.set_rows_per_segment(16);
    const int rows = static_cast<int>(rng.Uniform(1, 200));
    for (int i = 0; i < rows; ++i) {
      table.Insert(Item(i, rng.Uniform(0, 5), rng.Uniform(0, 100) * 1.0,
                        rng.Bernoulli(0.3) ? "special" : "plain"),
                   1);
    }
    const int nq = static_cast<int>(rng.Uniform(1, 40));
    std::vector<ScanQuerySpec> queries;
    for (int q = 0; q < nq; ++q) {
      ExprPtr pred;
      switch (rng.Uniform(0, 3)) {
        case 0: pred = CatEq(rng.Uniform(0, 5)); break;
        case 1: pred = PriceLt(rng.Uniform(0, 100) * 1.0); break;
        case 2: pred = Expr::Like(Expr::Column(3), "%special%"); break;
        case 3: pred = nullptr; break;
      }
      queries.push_back({static_cast<QueryId>(q), pred});
    }
    ClockScan scan(&table);
    ClockScanStats stats;
    DQBatch out = scan.RunCycle(queries, {}, 1, 2, &stats);
    EXPECT_EQ(stats.rows_scanned, static_cast<uint64_t>(rows));
    static const std::vector<Value> kNoParams;
    for (const ScanQuerySpec& q : queries) {
      std::vector<Tuple> expect;
      table.ScanVisible(1, [&](RowId, const Tuple& t) {
        if (q.predicate == nullptr || q.predicate->EvalBool(t, kNoParams)) {
          expect.push_back(t);
        }
        return true;
      });
      const std::vector<Tuple> got = out.RowsFor(q.id);
      ASSERT_EQ(got.size(), expect.size()) << "query " << q.id;
      // Shared scan emits rows in clock order; compare as multisets.
      auto sorted = [](std::vector<Tuple> v) {
        std::sort(v.begin(), v.end(), TupleLess);
        return v;
      };
      EXPECT_EQ(sorted(got), sorted(expect));
    }
  }
}

}  // namespace
}  // namespace shareddb
