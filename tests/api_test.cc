// Front-end API tests: Server heartbeat driver, Session lifecycle,
// Status-first error paths, admission-control spilling, deadline/cancel
// semantics, and concurrent blocking clients sharing batches.

#include <gtest/gtest.h>

#include <thread>

#include "api/server.h"
#include "core/plan_builder.h"

namespace shareddb {
namespace {

class ApiFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    users_ = catalog_.CreateTable(
        "users", Schema::Make({{"user_id", ValueType::kInt},
                               {"country", ValueType::kInt},
                               {"account", ValueType::kInt}}));
    for (int i = 0; i < 40; ++i) {
      users_->Insert({Value::Int(i), Value::Int(i % 4), Value::Int(i * 10)}, 1);
    }
    catalog_.snapshots().Reset(1);
  }

  std::unique_ptr<GlobalPlan> BuildPlan() {
    GlobalPlanBuilder b(&catalog_);
    const SchemaPtr us = users_->schema();
    b.AddQuery("user_by_id",
               logical::Scan("users", Expr::Eq(Expr::Column(*us, "user_id"),
                                               Expr::Param(0))));
    b.AddQuery("by_country",
               logical::Scan("users", Expr::Eq(Expr::Column(*us, "country"),
                                               Expr::Param(0))));
    b.AddUpdate("credit", "users",
                {{"account", Expr::Add(Expr::Column(2), Expr::Param(1))}},
                Expr::Eq(Expr::Column(0), Expr::Param(0)));
    return b.Build();
  }

  Catalog catalog_;
  Table* users_;
};

TEST_F(ApiFixture, PrepareValidatesStatementNames) {
  Engine engine(BuildPlan());
  api::Server server(&engine);
  auto session = server.OpenSession();

  api::PreparedStatement good;
  EXPECT_TRUE(session->Prepare("user_by_id", &good).ok());
  EXPECT_TRUE(good.valid());
  EXPECT_EQ(good.name(), "user_by_id");

  api::PreparedStatement bad;
  const Status s = session->Prepare("no_such_statement", &bad);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_FALSE(bad.valid());

  // Executing an invalid handle is a Status error, not an abort.
  const ResultSet rs = session->Execute(bad, {Value::Int(1)});
  EXPECT_EQ(rs.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ApiFixture, ExecuteByNameSurfacesNotFound) {
  Engine engine(BuildPlan());
  api::Server server(&engine);
  auto session = server.OpenSession();
  const ResultSet rs = session->Execute("missing_statement", {});
  EXPECT_EQ(rs.status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(rs.rows.empty());
}

TEST_F(ApiFixture, BlockingExecuteRidesTheDriver) {
  Engine engine(BuildPlan());
  api::Server server(&engine);
  auto session = server.OpenSession();
  const ResultSet rs = session->Execute("user_by_id", {Value::Int(7)});
  ASSERT_TRUE(rs.status.ok());
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 7);
  EXPECT_GE(rs.batches_waited, 1u);
  EXPECT_EQ(session->stats().statements, 1u);
}

TEST_F(ApiFixture, PausedServerStepsDeterministicBatches) {
  Engine engine(BuildPlan());
  api::ServerOptions opts;
  opts.start_paused = true;
  api::Server server(&engine, opts);
  ASSERT_TRUE(server.paused());
  auto session = server.OpenSession();

  std::vector<api::AsyncResult> fs;
  for (int i = 0; i < 5; ++i) {
    fs.push_back(session->ExecuteAsync("user_by_id", {Value::Int(i)}));
  }
  EXPECT_FALSE(fs[0].WaitFor(std::chrono::milliseconds(0)));
  const BatchReport r = server.StepBatch();
  EXPECT_EQ(r.num_queries, 5u);
  EXPECT_EQ(r.num_admitted, 5u);
  for (int i = 0; i < 5; ++i) {
    const ResultSet rs = fs[static_cast<size_t>(i)].Get();
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(rs.rows[0][0].AsInt(), i);
    EXPECT_EQ(rs.batches_waited, 1u);
  }
  EXPECT_EQ(server.stats().batches, 1u);
  EXPECT_EQ(server.stats().max_batch_occupancy, 5u);

  // Resume picks up anything still pending.
  auto late = session->ExecuteAsync("by_country", {Value::Int(2)});
  server.Resume();
  EXPECT_EQ(late.Get().rows.size(), 10u);
}

TEST_F(ApiFixture, AdmissionCapSpillsAndReportsPerCall) {
  Engine engine(BuildPlan());
  api::ServerOptions opts;
  opts.start_paused = true;
  opts.max_admissions_per_batch = 2;
  api::Server server(&engine, opts);
  auto session = server.OpenSession();

  std::vector<api::AsyncResult> fs;
  for (int i = 0; i < 5; ++i) {
    fs.push_back(session->ExecuteAsync("user_by_id", {Value::Int(i)}));
  }
  const BatchReport r1 = server.StepBatch();
  EXPECT_EQ(r1.queue_depth_at_formation, 5u);
  EXPECT_EQ(r1.num_admitted, 2u);
  EXPECT_EQ(r1.num_spilled, 3u);
  // The driver owes the spilled statements more heartbeats.
  server.StepBatch();
  server.StepBatch();
  for (int i = 0; i < 5; ++i) {
    const ResultSet rs = fs[static_cast<size_t>(i)].Get();
    ASSERT_TRUE(rs.status.ok()) << i;
    EXPECT_EQ(rs.admission_spills, static_cast<uint64_t>(i / 2)) << i;
  }
  const api::Server::Stats stats = server.stats();
  EXPECT_EQ(stats.statements_admitted, 5u);
  EXPECT_EQ(stats.statements_spilled, 3u + 1u);  // spill events per formation
}

TEST_F(ApiFixture, MinimumWaitTelemetryNeverUnderflows) {
  // Regression: admission_spills was computed as batches_waited - 1 with an
  // unchecked uint64 subtraction. A call fulfilled by the very next
  // heartbeat sits at the boundary (waited == 1, spills == 0); the clamped
  // computation must hold it at exactly zero — never a wrapped huge value —
  // and the session's summed telemetry must stay exact.
  Engine engine(BuildPlan());
  api::ServerOptions opts;
  opts.start_paused = true;
  api::Server server(&engine, opts);
  auto session = server.OpenSession();

  for (int round = 0; round < 3; ++round) {
    auto f = session->ExecuteAsync("user_by_id", {Value::Int(round)});
    server.StepBatch();
    const ResultSet rs = f.Get();
    ASSERT_TRUE(rs.status.ok()) << round;
    EXPECT_EQ(rs.batches_waited, 1u) << round;
    EXPECT_EQ(rs.admission_spills, 0u) << round;
  }
  // The blocking path feeds Session::Stats; with zero spills per call the
  // sums must be exactly (3 statements, 3 batches waited, 0 spills) — any
  // single underflowed term would blow these up by ~2^64.
  server.Resume();
  for (int round = 0; round < 3; ++round) {
    const ResultSet rs = session->Execute("user_by_id", {Value::Int(round)});
    ASSERT_TRUE(rs.status.ok()) << round;
    EXPECT_EQ(rs.admission_spills, 0u) << round;
  }
  EXPECT_EQ(session->stats().admission_spills, 0u);
  EXPECT_GE(session->stats().batches_waited, 3u);
  EXPECT_LT(session->stats().batches_waited, 100u);  // no wrapped term
}

TEST_F(ApiFixture, SpilloverDrainsWithoutNewSubmissions) {
  // A capped live driver must keep beating until the spill queue is empty —
  // the overflow itself seeds the next generation.
  Engine engine(BuildPlan());
  api::ServerOptions opts;
  opts.max_admissions_per_batch = 3;
  api::Server server(&engine, opts);
  auto session = server.OpenSession();
  std::vector<api::AsyncResult> fs;
  for (int i = 0; i < 10; ++i) {
    fs.push_back(session->ExecuteAsync("user_by_id", {Value::Int(i)}));
  }
  for (auto& f : fs) {
    EXPECT_TRUE(f.Get().status.ok());
  }
  // Quiesce before asserting stats: results are fulfilled inside the
  // heartbeat, the server records the report just after.
  server.Pause();
  EXPECT_EQ(server.stats().statements_admitted, 10u);
}

TEST_F(ApiFixture, CancelBeforeAdmissionAborts) {
  Engine engine(BuildPlan());
  api::ServerOptions opts;
  opts.start_paused = true;
  api::Server server(&engine, opts);
  auto session = server.OpenSession();

  api::AsyncResult doomed = session->ExecuteAsync("user_by_id", {Value::Int(1)});
  api::AsyncResult fine = session->ExecuteAsync("user_by_id", {Value::Int(2)});
  doomed.Cancel();
  const BatchReport r = server.StepBatch();
  EXPECT_EQ(r.num_cancelled, 1u);
  EXPECT_EQ(r.num_admitted, 1u);
  EXPECT_EQ(doomed.Get().status.code(), StatusCode::kAborted);
  EXPECT_TRUE(fine.Get().status.ok());
  EXPECT_EQ(server.stats().statements_cancelled, 1u);
}

TEST_F(ApiFixture, DeadlineExpiryCancelsThroughLiveDriver) {
  Engine engine(BuildPlan());
  api::Server server(&engine);
  auto session = server.OpenSession();
  // An already-satisfiable query: the deadline is generous, so this is the
  // fast path.
  api::AsyncResult quick = session->ExecuteAsync("user_by_id", {Value::Int(3)});
  const ResultSet rs = quick.GetWithDeadline(std::chrono::steady_clock::now() +
                                             std::chrono::seconds(30));
  EXPECT_TRUE(rs.status.ok());
  ASSERT_EQ(rs.rows.size(), 1u);

  // An immediately-expired deadline: best-effort cancel. Either the entry
  // was drained before admission (Aborted) or it raced the heartbeat and
  // completed — both are terminal, neither hangs.
  api::AsyncResult doomed = session->ExecuteAsync("user_by_id", {Value::Int(4)});
  const ResultSet rs2 = doomed.GetWithDeadline(std::chrono::steady_clock::now());
  EXPECT_TRUE(rs2.status.ok() || rs2.status.code() == StatusCode::kAborted);
}

TEST_F(ApiFixture, ConcurrentSessionsShareBatches) {
  Engine engine(BuildPlan());
  api::ServerOptions opts;
  opts.min_batch_window = std::chrono::milliseconds(2);
  api::Server server(&engine, opts);

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 20;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session = server.OpenSession();
      for (int i = 0; i < kCallsPerThread; ++i) {
        const int uid = (t * kCallsPerThread + i) % 40;
        const ResultSet rs = session->Execute("user_by_id", {Value::Int(uid)});
        if (!rs.status.ok() || rs.rows.size() != 1 ||
            rs.rows[0][0].AsInt() != uid) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  server.Pause();  // quiesce so the final heartbeat's report is recorded
  const api::Server::Stats stats = server.stats();
  EXPECT_EQ(stats.statements_admitted,
            static_cast<uint64_t>(kThreads * kCallsPerThread));
  // The whole point: concurrent clients ride shared generations.
  EXPECT_GT(stats.MeanBatchOccupancy(), 1.0);
  EXPECT_GT(stats.max_batch_occupancy, 1u);
}

TEST_F(ApiFixture, UpdatesAndQueriesShareGenerationsAcrossSessions) {
  Engine engine(BuildPlan());
  api::Server server(&engine);
  auto writer = server.OpenSession();
  auto reader = server.OpenSession();

  const ResultSet up = writer->Execute("credit", {Value::Int(5), Value::Int(100)});
  EXPECT_TRUE(up.status.ok());
  EXPECT_EQ(up.update_count, 1u);
  // A later generation (blocking Execute submits after the commit above
  // fulfilled) must observe the write.
  const ResultSet rs = reader->Execute("user_by_id", {Value::Int(5)});
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][2].AsInt(), 50 + 100);
}

}  // namespace
}  // namespace shareddb
