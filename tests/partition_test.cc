// PartitionedTable tests: routing, scans across partitions, partition-pruned
// shared scan cycles, update routing (paper §4.4/§4.5 extension).

#include <gtest/gtest.h>

#include "storage/partition.h"

namespace shareddb {
namespace {

SchemaPtr S() {
  return Schema::Make({{"id", ValueType::kInt}, {"v", ValueType::kInt}});
}

TEST(PartitionTest, InsertRoutesByKeyHash) {
  PartitionedTable pt("t", S(), /*key_column=*/0, /*num_partitions=*/4);
  for (int i = 0; i < 100; ++i) {
    pt.Insert({Value::Int(i), Value::Int(i * 2)}, 1);
  }
  EXPECT_EQ(pt.VisibleCount(1), 100u);
  size_t total = 0;
  for (size_t p = 0; p < pt.num_partitions(); ++p) {
    total += pt.partition(p)->VisibleCount(1);
    // Every row in partition p must hash there.
    pt.partition(p)->ScanVisible(1, [&](RowId, const Tuple& t) {
      EXPECT_EQ(pt.PartitionFor(t[0]), p);
      return true;
    });
  }
  EXPECT_EQ(total, 100u);
  // With 4 partitions and 100 keys, no partition should be empty.
  for (size_t p = 0; p < pt.num_partitions(); ++p) {
    EXPECT_GT(pt.partition(p)->VisibleCount(1), 0u);
  }
}

TEST(PartitionTest, ScanCycleMatchesUnpartitioned) {
  PartitionedTable pt("t", S(), 0, 3);
  Table flat("flat", S());
  for (int i = 0; i < 60; ++i) {
    Tuple row{Value::Int(i), Value::Int(i % 10)};
    pt.Insert(row, 1);
    flat.Insert(row, 1);
  }
  auto pred = Expr::Lt(Expr::Column(1), Expr::Literal(Value::Int(5)));
  std::vector<ScanQuerySpec> queries{{0, pred}, {1, nullptr}};

  DQBatch part_out = pt.RunScanCycle(queries, {}, 1, 2, nullptr);
  ClockScan flat_scan(&flat);
  DQBatch flat_out = flat_scan.RunCycle(queries, {}, 1, 2, nullptr);

  auto sorted = [](std::vector<Tuple> v) {
    std::sort(v.begin(), v.end(), TupleLess);
    return v;
  };
  EXPECT_EQ(sorted(part_out.RowsFor(0)), sorted(flat_out.RowsFor(0)));
  EXPECT_EQ(sorted(part_out.RowsFor(1)), sorted(flat_out.RowsFor(1)));
}

TEST(PartitionTest, KeyEqualityQueriesArePruned) {
  PartitionedTable pt("t", S(), 0, 4);
  for (int i = 0; i < 40; ++i) pt.Insert({Value::Int(i), Value::Int(i)}, 1);
  // Query pinned to key 7: only one partition should scan rows for it.
  auto pred = Expr::Eq(Expr::Column(0), Expr::Literal(Value::Int(7)));
  std::vector<ClockScanStats> stats;
  DQBatch out = pt.RunScanCycle({{0, pred}}, {}, 1, 2, &stats);
  EXPECT_EQ(out.RowsFor(0).size(), 1u);
  size_t scanning_partitions = 0;
  for (const ClockScanStats& s : stats) {
    if (s.rows_scanned > 0) ++scanning_partitions;
  }
  EXPECT_EQ(scanning_partitions, 1u);
}

TEST(PartitionTest, InsertsRouteUpdatesOthersBroadcast) {
  PartitionedTable pt("t", S(), 0, 4);
  for (int i = 0; i < 20; ++i) pt.Insert({Value::Int(i), Value::Int(0)}, 1);

  UpdateOp ins;
  ins.kind = UpdateKind::kInsert;
  ins.row = {Value::Int(100), Value::Int(1)};
  UpdateOp upd;
  upd.kind = UpdateKind::kUpdate;
  upd.where = nullptr;  // all rows
  upd.sets = {{1, Expr::Literal(Value::Int(9))}};
  pt.RunScanCycle({}, {ins, upd}, 1, 2, nullptr);

  EXPECT_EQ(pt.VisibleCount(2), 21u);
  size_t nines = 0;
  pt.ScanVisible(2, [&](RowId, const Tuple& t) {
    if (t[1].AsInt() == 9) ++nines;
    return true;
  });
  // The insert happens before the update inside the cycle of its partition,
  // so it gets the update too if it landed in a partition processed in the
  // same cycle; all 21 rows end with v=9.
  EXPECT_EQ(nines, 21u);
}

TEST(PartitionTest, ParallelUpdateCountsAreExact) {
  // Regression: an update op fans out to every partition, and partition
  // cycles run concurrently under a pool — the op's applied_out counter used
  // to be shared (a data race). Counts are now accumulated per partition and
  // summed after the barrier.
  PartitionedTable pt("t", S(), 0, 4);
  for (int i = 0; i < 400; ++i) pt.Insert({Value::Int(i), Value::Int(0)}, 1);

  UpdateOp upd;
  upd.kind = UpdateKind::kUpdate;
  upd.where = nullptr;  // all 400 rows, spread over all partitions
  upd.sets = {{1, Expr::Literal(Value::Int(9))}};
  uint64_t applied = 0;
  upd.applied_out = &applied;
  UpdateOp del;
  del.kind = UpdateKind::kDelete;
  del.where = Expr::Lt(Expr::Column(0), Expr::Literal(Value::Int(100)));
  uint64_t deleted = 0;
  del.applied_out = &deleted;

  TaskPool pool(4);
  ParallelContext pc;
  pc.pool = &pool;
  pc.min_rows_per_task = 16;
  pt.RunScanCycle({}, {upd, del}, 1, 2, nullptr, &pc);
  EXPECT_EQ(applied, 400u);
  EXPECT_EQ(deleted, 100u);
  EXPECT_EQ(pt.VisibleCount(2), 300u);
}

}  // namespace
}  // namespace shareddb
