// Runtime tests: the threaded (thread-per-operator, Algorithm 1) runtime
// must produce exactly the same results as the inline runtime, across many
// batches, with updates interleaved. Plus SyncedQueue and affinity units.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "api/server.h"
#include "core/engine.h"
#include "core/plan_builder.h"
#include "runtime/affinity.h"
#include "runtime/synced_queue.h"
#include "runtime/threaded_runtime.h"

namespace shareddb {
namespace {

TEST(SyncedQueueTest, PushPopOrder) {
  SyncedQueue<int> q;
  q.Push(1);
  q.Push(2);
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.TryPop().value(), 2);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(SyncedQueueTest, CloseUnblocksPop) {
  SyncedQueue<int> q;
  std::thread t([&] {
    const auto v = q.Pop();
    EXPECT_FALSE(v.has_value());
  });
  q.Close();
  t.join();
}

TEST(SyncedQueueTest, CrossThreadTransfer) {
  SyncedQueue<int> q;
  constexpr int kN = 1000;
  std::thread producer([&] {
    for (int i = 0; i < kN; ++i) q.Push(i);
    q.Close();
  });
  int expected = 0;
  while (auto v = q.Pop()) {
    EXPECT_EQ(*v, expected++);
  }
  EXPECT_EQ(expected, kN);
  producer.join();
}

TEST(AffinityTest, PinSucceedsOrDegradesGracefully) {
  EXPECT_GE(NumOnlineCores(), 1);
  // Must not crash; success depends on the environment.
  PinCurrentThreadToCore(0);
  PinCurrentThreadToCore(NumOnlineCores() + 5);  // wraps modulo cores
}

// --- threaded vs inline equivalence --------------------------------------------

class RuntimeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    users_ = catalog_.CreateTable(
        "users", Schema::Make({{"user_id", ValueType::kInt},
                               {"country", ValueType::kInt},
                               {"account", ValueType::kInt}}));
    orders_ = catalog_.CreateTable(
        "orders", Schema::Make({{"order_id", ValueType::kInt},
                                {"user_id", ValueType::kInt},
                                {"amount", ValueType::kInt}}));
    for (int i = 0; i < 30; ++i) {
      users_->Insert({Value::Int(i), Value::Int(i % 5), Value::Int(i * 10)}, 1);
    }
    for (int i = 0; i < 90; ++i) {
      orders_->Insert({Value::Int(i), Value::Int(i % 30), Value::Int(i)}, 1);
    }
    catalog_.snapshots().Reset(1);
  }

  std::unique_ptr<GlobalPlan> BuildPlan() {
    GlobalPlanBuilder b(&catalog_);
    const SchemaPtr us = users_->schema();
    b.AddQuery("user_orders",
               logical::HashJoin(
                   logical::Scan("users", Expr::Eq(Expr::Column(*us, "user_id"),
                                                   Expr::Param(0))),
                   logical::Scan("orders"), "user_id", "user_id", nullptr, "u", "o"));
    b.AddQuery("by_country",
               logical::GroupBy(logical::Scan("users"), {"country"},
                                {{AggSpec{AggFunc::kSum, -1, "total"}, "account"}}));
    b.AddQuery("top_orders", logical::TopN(logical::Scan("orders"),
                                           {{"amount", false}}, Expr::Param(0)));
    b.AddUpdate("bump", "users",
                {{"account", Expr::Add(Expr::Column(2), Expr::Param(1))}},
                Expr::Eq(Expr::Column(0), Expr::Param(0)));
    return b.Build();
  }

  Catalog catalog_;
  Table* users_;
  Table* orders_;
};

TEST_F(RuntimeFixture, ThreadedMatchesInlineAcrossBatches) {
  // Two identical engines over two identical catalogs would be cleaner, but
  // results are deterministic: run inline first, record, reset is not
  // possible — so run the same read-only batches on one catalog with two
  // engines sharing it (reads don't mutate). Paused servers + StepBatch pin
  // the exact batch composition on both sides.
  auto plan_inline = BuildPlan();
  auto plan_threaded = BuildPlan();
  GlobalPlan* raw_threaded = plan_threaded.get();
  Engine inline_engine(std::move(plan_inline));
  Engine threaded_engine(std::move(plan_threaded), {},
                         std::make_unique<ThreadedRuntime>(raw_threaded));
  api::ServerOptions sopts;
  sopts.start_paused = true;
  api::Server inline_server(&inline_engine, sopts);
  api::Server threaded_server(&threaded_engine, sopts);
  auto si = inline_server.OpenSession();
  auto st = threaded_server.OpenSession();

  for (int round = 0; round < 5; ++round) {
    std::vector<api::AsyncResult> fi, ft;
    for (int uid = 0; uid < 8; ++uid) {
      fi.push_back(si->ExecuteAsync("user_orders", {Value::Int(uid)}));
      ft.push_back(st->ExecuteAsync("user_orders", {Value::Int(uid)}));
    }
    fi.push_back(si->ExecuteAsync("by_country", {}));
    ft.push_back(st->ExecuteAsync("by_country", {}));
    fi.push_back(si->ExecuteAsync("top_orders", {Value::Int(7)}));
    ft.push_back(st->ExecuteAsync("top_orders", {Value::Int(7)}));

    inline_server.StepBatch();
    threaded_server.StepBatch();

    for (size_t i = 0; i < fi.size(); ++i) {
      ResultSet a = fi[i].Get();
      ResultSet b = ft[i].Get();
      ASSERT_EQ(a.rows.size(), b.rows.size()) << "round " << round << " q " << i;
      auto sorted = [](std::vector<Tuple> v) {
        std::sort(v.begin(), v.end(), TupleLess);
        return v;
      };
      const auto sa = sorted(a.rows);
      const auto sb = sorted(b.rows);
      for (size_t r = 0; r < sa.size(); ++r) {
        EXPECT_TRUE(TuplesEqual(sa[r], sb[r]));
      }
    }
  }
}

TEST_F(RuntimeFixture, ThreadedAppliesUpdates) {
  auto plan = BuildPlan();
  GlobalPlan* raw = plan.get();
  Engine engine(std::move(plan), {}, std::make_unique<ThreadedRuntime>(raw));
  api::Server server(&engine);
  auto session = server.OpenSession();
  ResultSet up = session->Execute("bump", {Value::Int(5), Value::Int(1000)});
  EXPECT_EQ(up.update_count, 1u);
  ResultSet rs = session->Execute("user_orders", {Value::Int(5)});
  ASSERT_FALSE(rs.rows.empty());
  EXPECT_EQ(rs.rows[0][2].AsInt(), 50 + 1000);
}

TEST_F(RuntimeFixture, ThreadedManyBatchesStressNoDeadlock) {
  auto plan = BuildPlan();
  GlobalPlan* raw = plan.get();
  Engine engine(std::move(plan), {}, std::make_unique<ThreadedRuntime>(raw));
  // Live heartbeat driver: async submissions race batch formation here,
  // which is exactly the production shape this stress guards.
  api::Server server(&engine);
  auto session = server.OpenSession();
  for (int round = 0; round < 50; ++round) {
    std::vector<api::AsyncResult> fs;
    for (int i = 0; i < 5; ++i) {
      fs.push_back(session->ExecuteAsync("user_orders", {Value::Int(i)}));
    }
    fs.push_back(session->ExecuteAsync("by_country", {}));
    for (auto& f : fs) f.Get();
  }
  server.Pause();  // quiesce so the final heartbeat's report is recorded
  EXPECT_GE(engine.batches_run(), 1u);
  EXPECT_EQ(server.stats().statements_admitted, 50u * 6u);
}

TEST_F(RuntimeFixture, ThreadedRuntimeThreadCountMatchesPlan) {
  auto plan = BuildPlan();
  GlobalPlan* raw = plan.get();
  ThreadedRuntime rt(raw);
  EXPECT_EQ(rt.num_threads(), raw->num_nodes());
}

}  // namespace
}  // namespace shareddb
