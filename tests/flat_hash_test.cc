// Tests for FlatHashMap, the open-addressing table under the hot operator
// paths (hash join build, group-by, distinct, predicate index, memo caches).

#include "common/flat_hash.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace shareddb {
namespace {

TEST(FlatHashMapTest, EmptyFinds) {
  FlatHashMap<uint64_t, int> m;
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(42), nullptr);
  EXPECT_FALSE(m.Contains(42));
}

TEST(FlatHashMapTest, InsertAndFind) {
  FlatHashMap<uint64_t, int> m;
  m[1] = 10;
  m[2] = 20;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.Find(1), nullptr);
  EXPECT_EQ(*m.Find(1), 10);
  EXPECT_EQ(*m.Find(2), 20);
  EXPECT_EQ(m.Find(3), nullptr);
  m[1] = 11;  // overwrite, no new entry
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(*m.Find(1), 11);
}

TEST(FlatHashMapTest, TryEmplaceReportsInsertion) {
  FlatHashMap<uint32_t, std::string> m;
  auto [v1, inserted1] = m.TryEmplace(5);
  EXPECT_TRUE(inserted1);
  EXPECT_TRUE(v1->empty());  // default-constructed
  *v1 = "five";
  auto [v2, inserted2] = m.TryEmplace(5);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*v2, "five");
}

// Identity-like keys (sequential ids) must not degrade the power-of-two
// bucket mask: the default hasher mixes.
TEST(FlatHashMapTest, SequentialKeysRehashAndSurvive) {
  FlatHashMap<uint64_t, uint64_t> m;
  const size_t n = 10000;
  for (uint64_t k = 0; k < n; ++k) m[k] = k * k;
  EXPECT_EQ(m.size(), n);
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_NE(m.Find(k), nullptr) << k;
    EXPECT_EQ(*m.Find(k), k * k);
  }
  EXPECT_EQ(m.Find(n + 1), nullptr);
  // Power-of-two capacity, load factor <= 0.75.
  EXPECT_EQ(m.capacity() & (m.capacity() - 1), 0u);
  EXPECT_LE(m.size() * 4, m.capacity() * 3);
}

// Colliding keys (forced into one bucket by a degenerate hasher) probe
// linearly and still resolve exactly.
TEST(FlatHashMapTest, CollisionChains) {
  struct OneBucket {
    uint64_t operator()(const int& k) const {
      (void)k;
      return 7;  // everything collides
    }
  };
  FlatHashMap<int, int, OneBucket> m;
  for (int k = 0; k < 50; ++k) m[k] = k + 100;
  EXPECT_EQ(m.size(), 50u);
  for (int k = 0; k < 50; ++k) {
    ASSERT_NE(m.Find(k), nullptr);
    EXPECT_EQ(*m.Find(k), k + 100);
  }
  EXPECT_EQ(m.Find(50), nullptr);
}

TEST(FlatHashMapTest, ReserveAvoidsGrowth) {
  FlatHashMap<uint64_t, int> m;
  m.Reserve(1000);
  const size_t cap = m.capacity();
  for (uint64_t k = 0; k < 1000; ++k) m[k] = 1;
  EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatHashMapTest, ClearKeepsCapacity) {
  FlatHashMap<uint64_t, std::vector<int>> m;
  for (uint64_t k = 0; k < 100; ++k) m[k].push_back(static_cast<int>(k));
  const size_t cap = m.capacity();
  m.Clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.Find(3), nullptr);
  // Reusable after Clear.
  m[3].push_back(33);
  EXPECT_EQ(m.Find(3)->size(), 1u);
}

TEST(FlatHashMapTest, IterationVisitsEachEntryOnce) {
  FlatHashMap<uint64_t, int> m;
  for (uint64_t k = 10; k < 30; ++k) m[k] = static_cast<int>(k);
  size_t count = 0;
  uint64_t key_sum = 0;
  for (const auto& e : m) {
    ++count;
    key_sum += e.key;
    EXPECT_EQ(e.value, static_cast<int>(e.key));
  }
  EXPECT_EQ(count, 20u);
  EXPECT_EQ(key_sum, (10u + 29u) * 20u / 2u);

  size_t foreach_count = 0;
  m.ForEach([&](const uint64_t& k, int& v) {
    (void)k;
    ++v;
    ++foreach_count;
  });
  EXPECT_EQ(foreach_count, 20u);
  EXPECT_EQ(*m.Find(10), 11);
}

// Erase-free contract: the table mirrors std::unordered_map under a random
// insert/overwrite workload.
TEST(FlatHashMapTest, PropertyMatchesUnorderedMap) {
  Rng rng(99);
  FlatHashMap<uint64_t, uint64_t> flat;
  std::unordered_map<uint64_t, uint64_t> ref;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t k = rng.Uniform(0, 4999);
    const uint64_t v = rng.Uniform(0, 1u << 30);
    flat[k] = v;
    ref[k] = v;
  }
  EXPECT_EQ(flat.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_NE(flat.Find(k), nullptr) << k;
    EXPECT_EQ(*flat.Find(k), v);
  }
}

TEST(MixHash64Test, DistinguishesSequentialInputs) {
  // Low bits of mixed sequential keys should differ (the property the
  // power-of-two mask depends on).
  std::unordered_map<uint64_t, int> low_bits;
  for (uint64_t k = 0; k < 1024; ++k) ++low_bits[MixHash64(k) & 1023];
  // No catastrophic pileup: no low-bit bucket holds more than ~2% of keys.
  for (const auto& [bits, n] : low_bits) {
    (void)bits;
    EXPECT_LE(n, 20);
  }
}

}  // namespace
}  // namespace shareddb
